package gridftp

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dstune/internal/dataset"
)

// errProtocolf wraps ErrProtocol with a formatted detail message.
func errProtocolf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrProtocol}, args...)...)
}

// fileChunk is the payload write size of the file pump. It is larger
// than the bulk pump's chunkSize so a typical small file moves in two
// syscalls — one frame header, one payload write — keeping the
// per-file syscall count flat (BenchmarkManyFilesEpoch pins it).
const fileChunk = 1 << 20

// fileZeros is the shared payload buffer of the file pump.
var fileZeros = make([]byte, fileChunk)

// ackSlack bounds how long the opener waits for the ACKs of OPENs
// still outstanding when the epoch deadline passes, so the control
// connection is drained (and reusable for FSTAT) shortly after the
// epoch ends.
const ackSlack = 2 * time.Second

// fileQueue is the client-side file-segment work queue that replaces
// the anonymous byte budget in dataset mode. Files become leasable
// only after admission (the OPEN/ACK handshake the opener performs up
// to pp deep); stripes then pull (file, offset, length) leases of at
// most leaseQuantum bytes. The unsent remainder of a failed lease is
// requeued immediately; bytes lost in a dead stripe's socket buffer
// are recovered by resyncing against the server's per-file counters.
type fileQueue struct {
	mu       sync.Mutex
	sizes    []int64
	rem      []int64 // bytes not yet leased, per file
	started  []bool  // admitted (or known to the server from a resume)
	inReady  []bool  // membership in ready
	ready    []int32 // admitted files with rem > 0, leased LIFO
	nextOpen int     // admission cursor
	unleased int64   // sum of rem across all files
}

// newFileQueue builds the queue for d. Zero-length files need no
// bytes and are never admitted.
func newFileQueue(d dataset.Dataset) *fileQueue {
	n := d.Count()
	q := &fileQueue{
		sizes:   make([]int64, n),
		rem:     make([]int64, n),
		started: make([]bool, n),
		inReady: make([]bool, n),
		ready:   make([]int32, 0, n),
	}
	for i, f := range d.Files {
		if f.Size > 0 {
			q.sizes[i] = f.Size
			q.rem[i] = f.Size
			q.unleased += f.Size
		}
	}
	return q
}

// next leases up to quantum bytes of the next admitted file. n == 0
// with wait true means nothing is admitted right now but more bytes
// remain (the pump should idle briefly); wait false means every byte
// has been leased and the pump is done for this epoch.
func (q *fileQueue) next(quantum int64) (idx int, off, n int64, wait bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.ready) > 0 {
		i := q.ready[len(q.ready)-1]
		if q.rem[i] <= 0 {
			q.ready = q.ready[:len(q.ready)-1]
			q.inReady[i] = false
			continue
		}
		take := q.rem[i]
		if take > quantum {
			take = quantum
		}
		off = q.sizes[i] - q.rem[i]
		q.rem[i] -= take
		q.unleased -= take
		if q.rem[i] <= 0 {
			q.ready = q.ready[:len(q.ready)-1]
			q.inReady[i] = false
		}
		return int(i), off, take, false
	}
	return 0, 0, 0, q.unleased > 0
}

// requeue returns n unsent bytes of file idx to the queue (a lease
// cut short by a dead stripe).
func (q *fileQueue) requeue(idx int, n int64) {
	if n <= 0 {
		return
	}
	q.mu.Lock()
	q.rem[idx] += n
	q.unleased += n
	if q.started[idx] && !q.inReady[idx] {
		q.ready = append(q.ready, int32(idx))
		q.inReady[idx] = true
	}
	q.mu.Unlock()
}

// admit marks file idx admitted (its OPEN was ACKed) and leasable.
func (q *fileQueue) admit(idx int) {
	if idx < 0 {
		return
	}
	q.mu.Lock()
	if idx < len(q.sizes) && !q.started[idx] {
		q.started[idx] = true
		if q.rem[idx] > 0 && !q.inReady[idx] {
			q.ready = append(q.ready, int32(idx))
			q.inReady[idx] = true
		}
	}
	q.mu.Unlock()
}

// nextToOpen returns the next file index the opener should admit, or
// ok false when every file has been opened. Zero-length and
// already-started files are skipped.
func (q *fileQueue) nextToOpen() (idx int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.nextOpen < len(q.sizes) {
		i := q.nextOpen
		q.nextOpen++
		if q.sizes[i] > 0 && !q.started[i] {
			return i, true
		}
	}
	return 0, false
}

// drained reports whether every byte has been leased.
func (q *fileQueue) drained() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.unleased == 0
}

// applyServer resynchronizes the queue against the server's per-file
// received counts (got, full-length): each file's unleased remainder
// becomes exactly the bytes the server still misses, so deficits from
// bytes lost in dead stripes' socket buffers are requeued and
// duplicate work is dropped. Files the server has bytes for are
// marked started — a resumed session needs no fresh OPEN for them.
// Callers must be quiesced: no leases in flight.
func (q *fileQueue) applyServer(got []int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ready = q.ready[:0]
	q.unleased = 0
	for i := range q.sizes {
		g := got[i]
		if g > q.sizes[i] {
			g = q.sizes[i]
		}
		if got[i] > 0 {
			q.started[i] = true
		}
		q.rem[i] = q.sizes[i] - g
		q.unleased += q.rem[i]
		q.inReady[i] = q.started[i] && q.rem[i] > 0
		if q.inReady[i] {
			q.ready = append(q.ready, int32(i))
		}
	}
}

// appendFrameHeader appends "FILE <idx> <off> <len>\n" to b without
// allocating.
func appendFrameHeader(b []byte, idx int, off, n int64) []byte {
	b = append(b, "FILE "...)
	b = strconv.AppendInt(b, int64(idx), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, off, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, n, 10)
	b = append(b, '\n')
	return b
}

// filePump drains the file queue into one data stripe: frame header,
// then the lease's payload in fileChunk writes. A lease, once its
// header is written, is always pushed to completion (the server
// expects exactly the framed length) — the epoch deadline is enforced
// between frames, and lease sizing under a shaped rate keeps the
// overshoot to about one chunk. Any write error marks the stripe dead
// (a half-written frame makes the connection unusable for the next
// epoch) and requeues the unsent remainder. Returns bytes sent, Write
// calls performed (the syscall count the benchmark pins), and whether
// the stripe stays usable.
func filePump(conn net.Conn, q *fileQueue, rate float64, deadline time.Time, abort <-chan struct{}, firstByte *atomic.Int64, start time.Time) (sent, writes int64, alive bool) {
	hdr := make([]byte, 0, 48)
	shaped := !math.IsInf(rate, 1)
	pumpStart := time.Now()
	for {
		select {
		case <-abort:
			return sent, writes, true
		default:
		}
		if time.Now().After(deadline) {
			return sent, writes, true
		}
		quantum := int64(leaseQuantum)
		if shaped {
			// Bound the lease to what the rate can move before the
			// deadline, so finishing the frame overshoots the epoch by
			// at most about one chunk.
			if b := int64(rate * time.Until(deadline).Seconds()); b < quantum {
				quantum = b
			}
			if quantum < fileChunk {
				quantum = fileChunk
			}
		}
		idx, off, n, wait := q.next(quantum)
		if n == 0 {
			if !wait {
				return sent, writes, true
			}
			// Nothing admitted yet; admissions arrive at the opener's
			// pp/latency pace.
			t := time.NewTimer(time.Millisecond)
			select {
			case <-abort:
				t.Stop()
				return sent, writes, true
			case <-t.C:
			}
			continue
		}
		hdr = appendFrameHeader(hdr[:0], idx, off, n)
		if _, err := conn.Write(hdr); err != nil {
			q.requeue(idx, n)
			return sent, writes, false
		}
		writes++
		for rem := n; rem > 0; {
			want := rem
			if want > fileChunk {
				want = fileChunk
			}
			m, err := conn.Write(fileZeros[:want])
			sent += int64(m)
			rem -= int64(m)
			writes++
			if m > 0 && firstByte.Load() == 0 {
				d := time.Since(start).Nanoseconds()
				if d < 1 {
					d = 1
				}
				firstByte.CompareAndSwap(0, d)
			}
			if err != nil {
				q.requeue(idx, rem)
				return sent, writes, false
			}
			// Token-bucket pacing on the stripe's cumulative volume —
			// across frames, so single-chunk small files are paced too.
			// The sleep is clamped to the epoch's remainder (a frame
			// still open at the deadline finishes unpaced), and watches
			// for an abort so a cancelled epoch is not held up.
			if shaped {
				due := time.Duration(float64(sent) / rate * float64(time.Second))
				if elapsed := time.Since(pumpStart); due > elapsed {
					sleep := due - elapsed
					if remain := time.Until(deadline); sleep > remain {
						sleep = remain
					}
					if sleep > 0 {
						t := time.NewTimer(sleep)
						select {
						case <-abort:
							t.Stop()
							// Keep pushing the frame to completion; the
							// watchdog has expired the write deadline, so
							// the next write fails fast if truly aborted.
						case <-t.C:
						}
					}
				}
			}
		}
	}
}

// opener owns the control connection for the pump phase of a dataset
// epoch: it keeps up to pp OPEN requests in flight, admits each file
// to the work queue as its ACK returns, and drains every outstanding
// ACK before returning so the connection is clean for the FSTAT
// reconciliation that follows. A read or write failure poisons the
// control connection (the next exchange re-dials); un-ACKed files
// simply stay unadmitted for a later epoch.
func (c *Client) opener(conn net.Conn, br *bufio.Reader, q *fileQueue, pp int, deadline time.Time, abort <-chan struct{}) {
	if pp < 1 {
		pp = 1
	}
	conn.SetReadDeadline(deadline.Add(ackSlack))
	defer conn.SetReadDeadline(time.Time{})
	line := make([]byte, 0, 64)
	inflight := 0
	for {
		select {
		case <-abort:
			return
		default:
		}
		stopping := time.Now().After(deadline)
		if !stopping {
			for inflight < pp {
				idx, ok := q.nextToOpen()
				if !ok {
					break
				}
				line = append(line[:0], "OPEN "...)
				line = append(line, c.token...)
				line = append(line, ' ')
				line = strconv.AppendInt(line, int64(idx), 10)
				line = append(line, '\n')
				if _, err := conn.Write(line); err != nil {
					c.dropCtrl(conn)
					return
				}
				inflight++
			}
		}
		if inflight == 0 {
			return
		}
		resp, err := readLine(br)
		if err != nil {
			c.dropCtrl(conn)
			return
		}
		rest, ok := strings.CutPrefix(resp, "ACK ")
		if !ok {
			c.dropCtrl(conn)
			return
		}
		idx, err := strconv.Atoi(rest)
		if err != nil {
			c.dropCtrl(conn)
			return
		}
		q.admit(idx)
		inflight--
	}
}

// sendManifest registers the dataset under the client's token: the
// MANIFEST header and one size line per file, sent as a single
// exchange on the persistent control connection (the server answers
// OK after the last line). Idempotent — a re-sent manifest of the
// same shape keeps the server's progress.
func (c *Client) sendManifest(ctx context.Context) (dials, retries int, err error) {
	var sb strings.Builder
	sb.Grow(len(c.fq.sizes)*8 + 64)
	sb.WriteString("MANIFEST ")
	sb.WriteString(c.token)
	sb.WriteByte(' ')
	sb.WriteString(strconv.Itoa(len(c.fq.sizes)))
	for _, sz := range c.fq.sizes {
		sb.WriteByte('\n')
		sb.WriteString(strconv.FormatInt(sz, 10))
	}
	_, dials, retries, err = c.exchange(ctx, sb.String(), "OK")
	return dials, retries, err
}

// fstatFiles asks the server for the token's per-file aggregate: the
// completed-file count and the duplicate-free received bytes.
func (c *Client) fstatFiles(ctx context.Context) (done int, useful int64, dials int, err error) {
	resp, dials, _, err := c.exchange(ctx, "FSTAT "+c.token, "FILES ")
	if err != nil {
		return 0, 0, dials, err
	}
	fields := strings.Fields(resp)
	if len(fields) != 3 {
		return 0, 0, dials, errProtocolf("bad FSTAT response %q", resp)
	}
	done, err1 := strconv.Atoi(fields[1])
	useful, err2 := strconv.ParseInt(fields[2], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, dials, errProtocolf("bad FSTAT response %q", resp)
	}
	return done, useful, dials, nil
}

// reconcileFiles polls the server's per-file aggregate until two
// consecutive reads agree (the kernel buffers have drained) or a
// short deadline passes. Mirrors reconcile for the framed data plane.
func (c *Client) reconcileFiles() (done int, useful int64, dials int, ok bool) {
	deadline := time.Now().Add(500 * time.Millisecond)
	prevDone, prevUseful := -1, int64(-1)
	seen := false
	for {
		d, u, dl, err := c.fstatFiles(context.Background())
		dials += dl
		if err == nil {
			if seen && d == prevDone && u == prevUseful {
				return d, u, dials, true
			}
			prevDone, prevUseful, seen = d, u, true
		}
		if time.Now().After(deadline) {
			return prevDone, prevUseful, dials, seen
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// resyncQueue rebuilds the work queue from the server's per-file
// received counts (the RESYNC exchange): lost bytes are requeued,
// already-received bytes are dropped, and resume restarts at
// file/offset granularity. Must only run quiesced (no leases in
// flight). Failure is not fatal — the queue keeps its local view and
// a later epoch retries.
func (c *Client) resyncQueue(ctx context.Context) (dials int, err error) {
	for k := 0; k < c.cfg.Retry.Attempts; k++ {
		if k > 0 {
			if !c.sleep(ctx, c.backoff(k)) {
				return dials, err
			}
		}
		if ierr := c.interrupted(ctx); ierr != nil {
			return dials, ierr
		}
		var conn net.Conn
		var br *bufio.Reader
		var dialed bool
		conn, br, dialed, err = c.ctrlConn()
		if dialed {
			dials++
		}
		if err != nil {
			if transientNetErr(err) {
				continue
			}
			return dials, err
		}
		conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
		if _, err = conn.Write(append([]byte("RESYNC "+c.token), '\n')); err != nil {
			c.dropCtrl(conn)
			if transientNetErr(err) {
				continue
			}
			return dials, err
		}
		if c.gotScratch == nil {
			c.gotScratch = make([]int64, len(c.fq.sizes))
		}
		got := c.gotScratch
		for i := range got {
			got[i] = 0
		}
		bad := false
		for {
			var line string
			line, err = readLine(br)
			if err != nil {
				break
			}
			if line == "END" {
				break
			}
			fields := strings.Fields(line)
			if len(fields) != 3 || fields[0] != "F" {
				bad = true
				break
			}
			idx, err1 := strconv.Atoi(fields[1])
			g, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 != nil || err2 != nil || idx < 0 || idx >= len(got) || g < 0 {
				bad = true
				break
			}
			got[idx] = g
		}
		if err != nil || bad {
			c.dropCtrl(conn)
			if bad {
				return dials, errProtocolf("bad RESYNC response")
			}
			if transientNetErr(err) {
				continue
			}
			return dials, err
		}
		conn.SetDeadline(time.Time{})
		c.fq.applyServer(got)
		// Re-baseline the completed-file delta at the server's current
		// count, so files finished before this session (or already
		// reconciled) are not reported again as this epoch's progress.
		done := 0
		for i, g := range got {
			if g >= c.fq.sizes[i] {
				done++
			}
		}
		c.lastDone = done
		return dials, nil
	}
	return dials, err
}
