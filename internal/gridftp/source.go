package gridftp

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"dstune/internal/dataset"
)

// fileSource resolves a dataset manifest against a directory of real
// files (ClientConfig.SourceDir): manifest entry i's payload is read
// from paths[i]. Built once in NewClient, where every entry is
// validated — names must be local (no absolute paths, no ".."
// escapes) and each file must exist as a regular file of at least the
// manifest size — so the pump never discovers a bad source mid-epoch.
type fileSource struct {
	dir   string
	paths []string
}

// newFileSource validates dir against d and builds the source.
func newFileSource(dir string, d dataset.Dataset) (*fileSource, error) {
	fs := &fileSource{dir: dir, paths: make([]string, d.Count())}
	for i, f := range d.Files {
		if f.Name == "" || !filepath.IsLocal(f.Name) {
			return nil, fmt.Errorf("gridftp: dataset file name %q escapes the source directory", f.Name)
		}
		path := filepath.Join(dir, f.Name)
		st, err := os.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("gridftp: source: %w", err)
		}
		if !st.Mode().IsRegular() {
			return nil, fmt.Errorf("gridftp: source file %s is not a regular file", path)
		}
		if st.Size() < f.Size {
			return nil, fmt.Errorf("gridftp: source file %s holds %d bytes; the manifest needs %d", path, st.Size(), f.Size)
		}
		fs.paths[i] = path
	}
	return fs, nil
}

// fileBufPool recycles the userspace pump's read buffers, so stripes
// churning across epochs do not allocate fileChunk each.
var fileBufPool = sync.Pool{New: func() any {
	b := make([]byte, fileChunk)
	return &b
}}

// stripeSource is one data stripe's view of the file source: a cached
// open handle for the file the stripe is currently leasing (a file's
// leases usually arrive back to back, so one open amortizes across
// them) and, for the userspace path, a pooled read buffer. Owned by a
// single pump goroutine; not safe for concurrent use.
type stripeSource struct {
	fs    *fileSource
	idx   int
	f     *os.File
	bufp  *[]byte
	calls int64 // open/pread/seek/sendfile syscalls issued
}

// newStripeSource returns a stripe view of fs, or nil for a nil
// source (synthesized-zeros mode).
func newStripeSource(fs *fileSource) *stripeSource {
	if fs == nil {
		return nil
	}
	return &stripeSource{fs: fs, idx: -1}
}

// file returns an open handle for file idx, reusing the cached one.
func (ss *stripeSource) file(idx int) (*os.File, error) {
	if ss.f != nil && ss.idx == idx {
		return ss.f, nil
	}
	ss.closeFile()
	f, err := os.Open(ss.fs.paths[idx])
	if err != nil {
		return nil, err
	}
	ss.calls++
	ss.f, ss.idx = f, idx
	return f, nil
}

// closeFile drops the cached handle.
func (ss *stripeSource) closeFile() {
	if ss.f != nil {
		ss.f.Close()
		ss.f, ss.idx = nil, -1
	}
}

// buf returns the stripe's pooled fileChunk-sized read buffer.
func (ss *stripeSource) buf() []byte {
	if ss.bufp == nil {
		ss.bufp = fileBufPool.Get().(*[]byte)
	}
	return *ss.bufp
}

// release returns the stripe's pooled resources at pump exit. Safe on
// nil.
func (ss *stripeSource) release() {
	if ss == nil {
		return
	}
	ss.closeFile()
	if ss.bufp != nil {
		fileBufPool.Put(ss.bufp)
		ss.bufp = nil
	}
}
