//go:build linux

package gridftp

import (
	"net"
	"syscall"
)

// setCork toggles TCP_CORK on the data connection. The zero-copy pump
// corks the stream around each lease so the small framed header
// coalesces with the first payload pages instead of departing as its
// own tiny segment ahead of every sendfile — the canonical
// header-plus-sendfile idiom. Returns the number of syscalls issued so
// the pump can tally it; a socket that refuses the option costs the
// one failed call and the stream still works, merely uncoalesced.
func setCork(c *net.TCPConn, v int) int64 {
	rc, err := c.SyscallConn()
	if err != nil {
		return 0
	}
	if rc.Control(func(fd uintptr) {
		syscall.SetsockoptInt(int(fd), syscall.IPPROTO_TCP, syscall.TCP_CORK, v)
	}) != nil {
		return 0
	}
	return 1
}
