package gridftp

import (
	"context"
	"testing"

	"dstune/internal/xfer"
)

// BenchmarkLoopbackThroughput measures the raw striped-transfer rate
// over loopback with 4 unshaped connections; the metric is MB/s of
// goodput.
func BenchmarkLoopbackThroughput(b *testing.B) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := NewClient(ClientConfig{Addr: s.Addr(), Bytes: xfer.Unbounded})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	var bytes, secs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.Run(context.Background(), xfer.Params{NC: 4, NP: 1}, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		bytes += r.Bytes
		secs += r.End - r.Start
	}
	b.StopTimer()
	if secs > 0 {
		b.ReportMetric(bytes/secs/1e6, "MB/s")
	}
}
