package gridftp

import (
	"context"
	"io"
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"dstune/internal/dataset"
	"dstune/internal/xfer"
)

// BenchmarkLoopbackThroughput measures the raw striped-transfer rate
// over loopback with 4 unshaped connections; the metric is MB/s of
// goodput.
func BenchmarkLoopbackThroughput(b *testing.B) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := NewClient(ClientConfig{Addr: s.Addr(), Bytes: xfer.Unbounded})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	var bytes, secs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.Run(context.Background(), xfer.Params{NC: 4, NP: 1}, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		bytes += r.Bytes
		secs += r.End - r.Start
	}
	b.StopTimer()
	if secs > 0 {
		b.ReportMetric(bytes/secs/1e6, "MB/s")
	}
}

// countDialer counts dial attempts, passing them through to the
// network.
type countDialer struct{ n atomic.Int64 }

func (d *countDialer) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	d.n.Add(1)
	return net.DialTimeout(network, addr, timeout)
}

// BenchmarkEpochSetup measures the per-epoch setup cost of the warm
// data plane against the paper-faithful cold restart: dials per epoch
// and DeadTime per epoch. warm-steady must report 0 dials/epoch, and
// warm-delta (an nc 2->3->2 cycle) exactly 0.5 — one dial per two
// epochs, for the single +1 step.
func BenchmarkEpochSetup(b *testing.B) {
	run := func(b *testing.B, cold bool, cycle []int) {
		s, err := Serve("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		d := &countDialer{}
		c, err := NewClient(ClientConfig{
			Addr:      s.Addr(),
			Bytes:     xfer.Unbounded,
			Dialer:    d.Dial,
			ColdStart: cold,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Stop()
		// Prime the control connection and (warm) the stripe pool at
		// the cycle's last width, so the timed epochs measure
		// steady-state behavior.
		if _, err := c.Run(context.Background(), xfer.Params{NC: cycle[len(cycle)-1], NP: 1}, 0.005); err != nil {
			b.Fatal(err)
		}
		d.n.Store(0)
		var deadSecs float64
		epochs := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, nc := range cycle {
				r, err := c.Run(context.Background(), xfer.Params{NC: nc, NP: 1}, 0.005)
				if err != nil {
					b.Fatal(err)
				}
				deadSecs += r.DeadTime
				epochs++
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(d.n.Load())/float64(epochs), "dials/epoch")
		b.ReportMetric(deadSecs/float64(epochs)*1e3, "deadtime-ms/epoch")
	}
	b.Run("warm-steady", func(b *testing.B) { run(b, false, []int{2}) })
	b.Run("warm-delta", func(b *testing.B) { run(b, false, []int{3, 2}) })
	b.Run("cold", func(b *testing.B) { run(b, true, []int{2}) })
}

// countWriteConn counts Write calls — the syscall count of the
// connection, since every Write on an unbuffered net.Conn is one
// syscall.
type countWriteConn struct {
	net.Conn
	n *atomic.Int64
}

func (c *countWriteConn) Write(p []byte) (int, error) {
	c.n.Add(1)
	return c.Conn.Write(p)
}

// BenchmarkManyFilesEpoch moves a 10k x 1 MiB dataset over loopback
// through the framed file plane in one epoch and pins the per-file
// cost: client-side write syscalls per file (frame header + one
// fileChunk payload write + one pipelined OPEN, ~3) and allocations
// per epoch. A regression here means the multi-file pump started
// fragmenting its frames or allocating per file.
func BenchmarkManyFilesEpoch(b *testing.B) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const nFiles = 10000
	ds := dataset.Uniform(nFiles, 1<<20)
	var writes atomic.Int64
	dial := func(network, addr string, timeout time.Duration) (net.Conn, error) {
		conn, err := net.DialTimeout(network, addr, timeout)
		if err != nil {
			return nil, err
		}
		return &countWriteConn{Conn: conn, n: &writes}, nil
	}
	b.SetBytes(ds.TotalBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewClient(ClientConfig{Addr: s.Addr(), Dataset: ds, Dialer: dial})
		if err != nil {
			b.Fatal(err)
		}
		r, err := c.Run(context.Background(), xfer.Params{NC: 4, NP: 1, PP: 64}, 300)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Done {
			b.Fatalf("epoch did not complete the dataset: %+v", r)
		}
		b.StopTimer()
		c.Stop()
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(writes.Load())/float64(int64(b.N)*nFiles), "syscalls/file")
}

// BenchmarkPump measures the unshaped pump fast path in isolation:
// one stream draining a shared budget through byte leases. allocs/op
// must stay at zero — the lease quantum amortizes the shared-budget
// CAS and the deadline checks, and the chunk buffer is the package
// zeros slice.
func BenchmarkPump(b *testing.B) {
	var budget atomic.Int64
	budget.Store(int64(b.N) * chunkSize)
	abort := make(chan struct{})
	defer close(abort)
	b.SetBytes(chunkSize)
	b.ReportAllocs()
	b.ResetTimer()
	sent, alive := pump(io.Discard, math.Inf(1), time.Now().Add(time.Hour), &budget, abort)
	b.StopTimer()
	if !alive {
		b.Fatal("pump reported a dead stream on io.Discard")
	}
	if sent != int64(b.N)*chunkSize {
		b.Fatalf("pump sent %d bytes, want %d", sent, int64(b.N)*chunkSize)
	}
}
