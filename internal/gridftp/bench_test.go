package gridftp

import (
	"context"
	"io"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"dstune/internal/dataset"
	"dstune/internal/xfer"
)

// BenchmarkLoopbackThroughput measures the raw striped-transfer rate
// over loopback with 4 unshaped connections; the metric is MB/s of
// goodput.
func BenchmarkLoopbackThroughput(b *testing.B) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := NewClient(ClientConfig{Addr: s.Addr(), Bytes: xfer.Unbounded})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	var bytes, secs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.Run(context.Background(), xfer.Params{NC: 4, NP: 1}, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		bytes += r.Bytes
		secs += r.End - r.Start
	}
	b.StopTimer()
	if secs > 0 {
		b.ReportMetric(bytes/secs/1e6, "MB/s")
	}
}

// countDialer counts dial attempts, passing them through to the
// network.
type countDialer struct{ n atomic.Int64 }

func (d *countDialer) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	d.n.Add(1)
	return net.DialTimeout(network, addr, timeout)
}

// BenchmarkEpochSetup measures the per-epoch setup cost of the warm
// data plane against the paper-faithful cold restart: dials per epoch
// and DeadTime per epoch. warm-steady must report 0 dials/epoch, and
// warm-delta (an nc 2->3->2 cycle) exactly 0.5 — one dial per two
// epochs, for the single +1 step.
func BenchmarkEpochSetup(b *testing.B) {
	run := func(b *testing.B, cold bool, cycle []int) {
		s, err := Serve("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		d := &countDialer{}
		c, err := NewClient(ClientConfig{
			Addr:      s.Addr(),
			Bytes:     xfer.Unbounded,
			Dialer:    d.Dial,
			ColdStart: cold,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Stop()
		// Prime the control connection and (warm) the stripe pool at
		// the cycle's last width, so the timed epochs measure
		// steady-state behavior.
		if _, err := c.Run(context.Background(), xfer.Params{NC: cycle[len(cycle)-1], NP: 1}, 0.005); err != nil {
			b.Fatal(err)
		}
		d.n.Store(0)
		var deadSecs float64
		epochs := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, nc := range cycle {
				r, err := c.Run(context.Background(), xfer.Params{NC: nc, NP: 1}, 0.005)
				if err != nil {
					b.Fatal(err)
				}
				deadSecs += r.DeadTime
				epochs++
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(d.n.Load())/float64(epochs), "dials/epoch")
		b.ReportMetric(deadSecs/float64(epochs)*1e3, "deadtime-ms/epoch")
	}
	b.Run("warm-steady", func(b *testing.B) { run(b, false, []int{2}) })
	b.Run("warm-delta", func(b *testing.B) { run(b, false, []int{3, 2}) })
	b.Run("cold", func(b *testing.B) { run(b, true, []int{2}) })
}

// BenchmarkManyFilesEpoch moves a 10k x 1 MiB dataset over loopback
// through the framed file plane in one epoch and pins the per-file
// cost: client-side data-plane syscalls per file (Report.Syscalls —
// one writev per header+payload frame, pipelined OPENs batched into
// one write per refill round, ~1) and allocations per epoch. A
// regression here means the multi-file pump started fragmenting its
// frames or allocating per file. The coarse sub-benchmark is the
// production configuration; wall forces the server back to a time.Now
// call per socket read, so the pair's MB/s delta is what the coarse
// activity clock saves on the receive path.
func BenchmarkManyFilesEpoch(b *testing.B) {
	run := func(b *testing.B, wallTouch bool) {
		s, err := Serve("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		s.wallTouch.Store(wallTouch)
		const nFiles = 10000
		ds := dataset.Uniform(nFiles, 1<<20)
		var syscalls int64
		b.SetBytes(ds.TotalBytes())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := NewClient(ClientConfig{Addr: s.Addr(), Dataset: ds})
			if err != nil {
				b.Fatal(err)
			}
			r, err := c.Run(context.Background(), xfer.Params{NC: 4, NP: 1, PP: 64}, 300)
			if err != nil {
				b.Fatal(err)
			}
			if !r.Done {
				b.Fatalf("epoch did not complete the dataset: %+v", r)
			}
			syscalls += r.Syscalls
			b.StopTimer()
			c.Stop()
			b.StartTimer()
		}
		b.StopTimer()
		b.ReportMetric(float64(syscalls)/float64(int64(b.N)*nFiles), "syscalls/file")
	}
	b.Run("coarse", func(b *testing.B) { run(b, false) })
	b.Run("wall", func(b *testing.B) { run(b, true) })
}

// BenchmarkFileSourceEpoch moves a 4 GiB disk-backed dataset (128 x
// 32 MiB) over loopback and reports syscalls/GiB and MB/s for the
// zero-copy pump and the forced-userspace fallback. The zerocopy case
// is the acceptance gate: a sendfile lease costs ~6 syscalls
// regardless of length, so it must stay ≥5x under the userspace
// pread+writev figure at equal-or-better throughput
// (BENCH_baseline.json pins both). With the server's truncating
// discard receive the zero-copy path is copy-free end to end — the
// sender queues page-cache references, the receiver drops them in
// kernel — so its margin over the userspace pump's three memory
// passes is large on this plane, not merely "equal".
//
// Setup overwrites the sparse materialized files with real bytes and
// leaves the page cache warm, so both modes stream dense data from
// memory. This isolates the variable under test — the data-plane
// syscall and copy path. Sparse files would flatter the userspace
// pump: hole reads are satisfied from the kernel's shared zero page,
// making its extra copies nearly free cache-hot traffic, whereas real
// transfers pay a memory pass per copy. And cold pages are
// pathological for sendfile on small single-CPU hosts (splice faults
// them in one at a time inside the send syscall, stalling the ACK
// clock); the pump's per-lease POSIX_FADV_WILLNEED hint recovers part
// of that, but the steady state this benchmark pins must not ride on
// kernel cold-page behavior that varies across hosts.
func BenchmarkFileSourceEpoch(b *testing.B) {
	srcDir := b.TempDir()
	ds := dataset.Uniform(128, 32<<20)
	if err := dataset.Materialize(srcDir, ds); err != nil {
		b.Fatal(err)
	}
	fill := make([]byte, 1<<20)
	for i := range fill {
		fill[i] = byte(i * 131)
	}
	for _, f := range ds.Files {
		fh, err := os.OpenFile(filepath.Join(srcDir, f.Name), os.O_WRONLY, 0)
		if err != nil {
			b.Fatal(err)
		}
		for off := int64(0); off < f.Size; off += int64(len(fill)) {
			n := int64(len(fill))
			if f.Size-off < n {
				n = f.Size - off
			}
			if _, err := fh.Write(fill[:n]); err != nil {
				b.Fatal(err)
			}
		}
		// Flush now so background writeback of 4 GiB of dirty setup
		// pages does not overlap (and penalize) whichever sub-benchmark
		// runs first.
		if err := fh.Sync(); err != nil {
			b.Fatal(err)
		}
		fh.Close()
	}
	run := func(b *testing.B, noZC bool) {
		s, err := Serve("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		var syscalls int64
		b.SetBytes(ds.TotalBytes())
		// One untimed epoch absorbs the cold-system tail: the first
		// transfer after materializing 4 GiB tends to land in TCP's
		// slow flow-start mode on a busy single-CPU host, and a
		// throwaway pass lets the timed epochs measure the pump, not
		// the machine settling.
		if wc, err := NewClient(ClientConfig{Addr: s.Addr(), Dataset: ds, SourceDir: srcDir, NoZeroCopy: noZC}); err == nil {
			wc.Run(context.Background(), xfer.Params{NC: 4, NP: 1, PP: 16}, 300)
			wc.Stop()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := NewClient(ClientConfig{Addr: s.Addr(), Dataset: ds, SourceDir: srcDir, NoZeroCopy: noZC})
			if err != nil {
				b.Fatal(err)
			}
			r, err := c.Run(context.Background(), xfer.Params{NC: 4, NP: 1, PP: 16}, 300)
			if err != nil {
				b.Fatal(err)
			}
			if !r.Done {
				b.Fatalf("epoch did not complete the dataset: %+v", r)
			}
			syscalls += r.Syscalls
			b.StopTimer()
			c.Stop()
			b.StartTimer()
		}
		b.StopTimer()
		gib := float64(ds.TotalBytes()) / float64(1<<30) * float64(b.N)
		b.ReportMetric(float64(syscalls)/gib, "syscalls/GiB")
	}
	b.Run("zerocopy", func(b *testing.B) {
		if !zeroCopyAvailable {
			b.Skip("zero-copy unavailable in this build")
		}
		run(b, false)
	})
	b.Run("userspace", func(b *testing.B) { run(b, true) })
}

// BenchmarkPump measures the unshaped pump fast path in isolation:
// one stream draining a shared budget through byte leases. allocs/op
// must stay at zero — the lease quantum amortizes the shared-budget
// CAS and the deadline checks, and the chunk buffer is the package
// zeros slice.
func BenchmarkPump(b *testing.B) {
	var budget atomic.Int64
	budget.Store(int64(b.N) * chunkSize)
	abort := make(chan struct{})
	defer close(abort)
	b.SetBytes(chunkSize)
	b.ReportAllocs()
	b.ResetTimer()
	sent, alive := pump(io.Discard, math.Inf(1), time.Now().Add(time.Hour), &budget, abort)
	b.StopTimer()
	if !alive {
		b.Fatal("pump reported a dead stream on io.Discard")
	}
	if sent != int64(b.N)*chunkSize {
		b.Fatalf("pump sent %d bytes, want %d", sent, int64(b.N)*chunkSize)
	}
}
