//go:build linux && (amd64 || arm64) && !dstune_nozerocopy

package gridftp

import (
	"os"
	"syscall"
)

// fadviseWillNeed asks the kernel to populate the page cache for
// [off, off+n) of f ahead of a sendfile lease. sendfile's splice path
// faults cold pages in one at a time — each miss a synchronous
// zero-fill or block read inside the send syscall — which collapses
// the zero-copy pump to a fraction of the userspace pump's rate on a
// cold file. POSIX_FADV_WILLNEED batches that population up front
// (including hole pages, which readahead(2) skips), so the sendfile
// that follows streams from warm pages. One syscall per lease,
// tallied by the caller; failure is ignored — the hint is purely an
// optimization and sendfile handles cold pages correctly, just
// slowly. Returns the syscalls spent (1; the no-op fallback returns
// 0) so the caller's tally stays honest.
//
// Restricted to 64-bit arches: 32-bit Linux splits the offset across
// registers (fadvise64_64) and is not worth the marshaling here.
func fadviseWillNeed(f *os.File, off, n int64) int64 {
	const posixFadvWillNeed = 3
	syscall.Syscall6(syscall.SYS_FADVISE64, f.Fd(), uintptr(off), uintptr(n), posixFadvWillNeed, 0, 0)
	return 1
}
