// Package docs implements the repository's documentation lints, run
// both as an in-repo test and by the CI docs job (via cmd/docscheck):
//
//   - CheckLinks walks the repo's markdown files and reports
//     intra-repo links whose targets do not exist;
//   - CheckExports parses Go packages and reports exported
//     identifiers that carry no doc comment, plus packages with no
//     package comment.
//
// Both return findings as plain strings ("file:line: message") so
// callers can print or assert on them without any extra structure.
package docs

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkRE matches inline markdown links and images: [text](target) and
// ![alt](target). Reference-style links are not used in this repo.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// CheckLinks walks root for .md files (skipping .git and testdata)
// and reports links to intra-repo targets that do not exist. External
// links (with a URL scheme) and pure-anchor links are not checked;
// anchor fragments on file links are stripped before the existence
// check.
func CheckLinks(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				if i := strings.IndexAny(target, "#?"); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					rel, rerr := filepath.Rel(root, path)
					if rerr != nil {
						rel = path
					}
					problems = append(problems, fmt.Sprintf("%s:%d: broken link %q", rel, i+1, m[1]))
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(problems)
	return problems, nil
}

// CheckExports parses the Go package in each dir (tests excluded) and
// reports exported identifiers without a doc comment: package-level
// functions, types, constants, variables, methods on exported types,
// and exported fields of exported structs. A const/var/type block's
// doc comment covers all its specs. Each package must also carry a
// package comment on at least one file.
func CheckExports(dirs ...string) ([]string, error) {
	var problems []string
	for _, dir := range dirs {
		p, err := checkPackage(dir)
		if err != nil {
			return nil, err
		}
		problems = append(problems, p...)
	}
	sort.Strings(problems)
	return problems, nil
}

// checkPackage lints one package directory.
func checkPackage(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
			problems = append(problems, checkFile(fset, f)...)
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
	}
	return problems, nil
}

// checkFile lints one parsed file's top-level declarations.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "exported %s %s is undocumented", funcKind(d), d.Name.Name)
			}
		case *ast.GenDecl:
			checkGenDecl(d, report)
		}
	}
	return problems
}

// checkGenDecl lints one type/const/var declaration. A doc comment on
// the decl block covers every spec inside it.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, ...any)) {
	covered := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !covered && s.Doc == nil {
				report(s.Pos(), "exported type %s is undocumented", s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok {
				checkFields(s.Name.Name, st, report)
			}
		case *ast.ValueSpec:
			if covered || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), "exported %s %s is undocumented", strings.ToLower(d.Tok.String()), name.Name)
				}
			}
		}
	}
}

// checkFields lints the exported fields of an exported struct type.
func checkFields(typeName string, st *ast.StructType, report func(token.Pos, string, ...any)) {
	for _, field := range st.Fields.List {
		if field.Doc != nil || field.Comment != nil {
			continue
		}
		for _, name := range field.Names {
			if name.IsExported() {
				report(name.Pos(), "exported field %s.%s is undocumented", typeName, name.Name)
			}
		}
	}
}

// receiverExported reports whether d is a plain function or a method
// whose receiver type is exported — methods on unexported types are
// invisible in godoc and exempt.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch rt := t.(type) {
		case *ast.StarExpr:
			t = rt.X
		case *ast.IndexExpr: // generic receiver
			t = rt.X
		case *ast.Ident:
			return rt.IsExported()
		default:
			return true
		}
	}
}

// funcKind names a FuncDecl for messages: "function" or "method".
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}
