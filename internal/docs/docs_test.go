package docs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckLinks exercises the link checker on a synthetic tree: good
// relative links, anchors, and external URLs pass; dangling targets
// are reported with file and line.
func TestCheckLinks(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "docs")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(path, content string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(filepath.Join(dir, "README.md"), strings.Join([]string{
		"[good](docs/GUIDE.md)",
		"[anchor](docs/GUIDE.md#setup)",
		"[external](https://example.com/nope.md) [mail](mailto:x@y.z) [self](#top)",
		"[broken](docs/MISSING.md)",
	}, "\n"))
	write(filepath.Join(sub, "GUIDE.md"), "[up](../README.md)\n[bad](./gone.md)\n")

	problems, err := CheckLinks(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		`README.md:4: broken link "docs/MISSING.md"`,
		filepath.Join("docs", "GUIDE.md") + `:2: broken link "./gone.md"`,
	}
	if len(problems) != len(want) {
		t.Fatalf("got %d problems %q, want %d", len(problems), problems, len(want))
	}
	for i := range want {
		if problems[i] != want[i] {
			t.Errorf("problem %d = %q, want %q", i, problems[i], want[i])
		}
	}
}

// TestCheckExports exercises the godoc lint on a synthetic package:
// documented and unexported identifiers pass; undocumented exported
// functions, types, consts, fields, methods on exported types, and a
// missing package comment are reported.
func TestCheckExports(t *testing.T) {
	dir := t.TempDir()
	src := `package demo

// Documented is fine.
func Documented() {}

func Undocumented() {}

func unexported() {}

// Box is fine; its undocumented exported field is not.
type Box struct {
	Lid   int
	inner int
}

type Naked struct{}

// Grouped consts: the block doc covers both.
const (
	A = 1
	B = 2
)

const Loose = 3

// Method docs: Documented method fine, undocumented reported,
// methods on unexported receivers exempt.
func (Box) Sealed() {}

func (b Box) Open() {}

func (x hidden) Exported() {}

type hidden struct{}
`
	if err := os.WriteFile(filepath.Join(dir, "demo.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := CheckExports(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{
		"package demo has no package comment",
		"exported function Undocumented is undocumented",
		"exported field Box.Lid is undocumented",
		"exported type Naked is undocumented",
		"exported const Loose is undocumented",
		"exported method Open is undocumented",
	}
	for _, sub := range wantSubstrings {
		found := false
		for _, p := range problems {
			if strings.Contains(p, sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing finding containing %q in %q", sub, problems)
		}
	}
	if len(problems) != len(wantSubstrings) {
		t.Errorf("got %d problems %q, want %d", len(problems), problems, len(wantSubstrings))
	}
	for _, p := range problems {
		if strings.Contains(p, "Sealed") || strings.Contains(p, "hidden") || strings.Contains(p, "Exported") {
			t.Errorf("unexpected finding %q", p)
		}
	}
}

// TestRepoDocs is the in-repo enforcement: the repository's own
// markdown links must resolve and its public packages must be fully
// documented. CI runs the same checks via cmd/docscheck.
func TestRepoDocs(t *testing.T) {
	root := filepath.Join("..", "..")
	links, err := CheckLinks(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range links {
		t.Errorf("broken markdown link: %s", p)
	}
	pkgs := []string{".", "internal/tuner", "internal/xfer", "internal/gridftp", "internal/obs"}
	var dirs []string
	for _, p := range pkgs {
		dirs = append(dirs, filepath.Join(root, p))
	}
	exports, err := CheckExports(dirs...)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range exports {
		t.Errorf("undocumented export: %s", p)
	}
}
