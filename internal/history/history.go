// Package history is the stack's knowledge plane: an append-only,
// crash-safe JSONL store of past tuning outcomes, keyed by endpoint
// identity, dataset size class, and external-load fingerprint. A
// Driver (or Fleet session) records the best parameter vector a run
// found; a later run against the same — or a nearby — key warm-starts
// its search from that vector instead of the fixed cold-start point,
// following the offline-knowledge + online-refinement designs of Nine
// et al. (arXiv:1707.09455) and Arslan & Kosar (arXiv:1708.03053).
//
// The file format is one JSON object per line (a Record). Appends are
// fsynced and the containing directory is synced when the file is
// created, so a completed Add survives a crash; a torn final line from
// a crash mid-append is skipped on the next Open, reported through
// ErrCorrupt, and truncated away (write-ahead-log recovery) so later
// appends stay line-framed. The file is opened O_APPEND and every
// append (and Open's recovery) holds an exclusive advisory flock, so
// independent Stores sharing one file — a daemon and a CLI, say —
// serialize their writes instead of interleaving torn records.
package history

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"dstune/internal/fsx"
)

// ErrCorrupt marks an Open that skipped unreadable lines. The store
// returned alongside it holds every line that did parse and remains
// fully usable; the error exists so operators learn that history was
// lost. Test with errors.Is.
var ErrCorrupt = errors.New("history: corrupt entries skipped")

// Key identifies a transfer context: where the data goes, how much of
// it there is, and how contended the source was. Two runs with equal
// keys are expected to share an optimal operating point.
type Key struct {
	// Endpoint identifies the far end: a testbed name for simulated
	// transfers, the server address for socket transfers. Lookups
	// never cross endpoints.
	Endpoint string `json:"endpoint"`
	// SizeClass is the dataset size bucket from SizeClass: -1 for
	// unbounded transfers, otherwise the floor of log2 of the volume
	// in MB.
	SizeClass int `json:"size_class"`
	// LoadClass is the external-load bucket from LoadClass: 0 for an
	// unloaded source, otherwise floor(log2(level))+1.
	LoadClass int `json:"load_class"`
}

// IsZero reports whether the key is the zero value (no endpoint).
func (k Key) IsZero() bool { return k == Key{} }

// String implements fmt.Stringer.
func (k Key) String() string {
	return fmt.Sprintf("%s/size=%d/load=%d", k.Endpoint, k.SizeClass, k.LoadClass)
}

// SizeClass buckets a transfer volume in bytes into a power-of-two MB
// class: -1 for unbounded (non-positive or infinite) volumes, 0 for
// anything up to 2 MB, then one class per doubling.
func SizeClass(bytes float64) int {
	if bytes <= 0 || math.IsInf(bytes, 1) || math.IsNaN(bytes) {
		return -1
	}
	mb := bytes / (1 << 20)
	if mb <= 1 {
		return 0
	}
	return int(math.Floor(math.Log2(mb)))
}

// LoadClass buckets an external-load level (for the simulator: tfr +
// cmp) into 0 for unloaded, else floor(log2(level))+1 — so levels
// 1, 2-3, 4-7, 8-15, … land in classes 1, 2, 3, 4, … and the paper's
// {0, 16, 32, 64} sweep maps to {0, 5, 6, 7}.
func LoadClass(level int) int {
	if level <= 0 {
		return 0
	}
	c := 1
	for level > 1 {
		level >>= 1
		c++
	}
	return c
}

// Record is one stored tuning outcome: the key it ran under, the best
// parameter vector the run found, and the throughput observed there.
type Record struct {
	// Key is the transfer context the run tuned under.
	Key Key `json:"key"`
	// X is the best-known parameter vector.
	X []int `json:"x"`
	// Throughput is the observed throughput at X in bytes/second.
	Throughput float64 `json:"throughput"`
	// Tuner names the strategy that produced the record.
	Tuner string `json:"tuner,omitempty"`
	// Epochs is the number of control epochs the run took.
	Epochs int `json:"epochs,omitempty"`
}

// validate reports whether the record is storable.
func (r Record) validate() error {
	if r.Key.Endpoint == "" {
		return errors.New("history: record has no endpoint")
	}
	if len(r.X) == 0 {
		return errors.New("history: record has no parameter vector")
	}
	for _, v := range r.X {
		if v < 1 {
			return fmt.Errorf("history: record vector %v has a coordinate < 1", r.X)
		}
	}
	if r.Throughput < 0 || math.IsInf(r.Throughput, 0) || math.IsNaN(r.Throughput) {
		return fmt.Errorf("history: record throughput %v is not a finite non-negative number", r.Throughput)
	}
	return nil
}

// Entry is a Lookup result: the best-known vector for the queried key
// (or its nearest neighbor), the throughput observed there, and the
// bucket distance of the match (0 = exact key).
type Entry struct {
	// X is the best-known parameter vector.
	X []int
	// Throughput is the observed throughput at X in bytes/second.
	Throughput float64
	// Distance is |Δsize_class| + |Δload_class| between the queried
	// and the matched key; 0 means an exact match.
	Distance int
}

// Store is the append-only history store. The zero value is not
// usable; construct with Open (file-backed) or NewMemStore (memory
// only, for tests and experiments). Store is safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	recs    []Record
	f       *os.File
	skipped int
}

// maxLine bounds one JSONL record (a defense against a corrupt file
// presenting an unbounded line).
const maxLine = 1 << 20

// Open loads the history at path, creating the file if absent, and
// keeps it open for appends. Unparseable or invalid lines — a torn
// tail from a crash mid-append, hand-edited damage — are skipped, not
// fatal: the store returns usable alongside an ErrCorrupt-wrapped
// error counting them. A torn (newline-less) tail is additionally
// truncated away, write-ahead-log style, so appends after recovery
// stay line-framed. Only a nil *Store result signals failure.
//
// The file is opened in append mode and every append (and Open's
// recovery scan) runs under an exclusive advisory flock, so multiple
// Stores on one file — a daemon and a CLI sharing one knowledge base —
// serialize their writes and can never interleave torn records. Each
// Store still only serves the records it has itself read or written;
// the lock guarantees framing and durability, not a shared cache.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if err := fsx.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	// The recovery scan reads, decides, and truncates under the lock,
	// so it can never race another store's in-flight append (and
	// mistake its half-written line for a torn tail).
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, err
	}
	defer unlockFile(f)
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	s := &Store{f: f}
	valid := len(data)
	if valid > 0 && data[valid-1] != '\n' {
		// A crash mid-append left a torn final line: count it, drop
		// it, and truncate the file back to its last complete line.
		valid = bytes.LastIndexByte(data, '\n') + 1
		s.skipped++
		data = data[:valid]
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var rec Record
		if len(line) > maxLine {
			s.skipped++
			continue
		}
		if err := json.Unmarshal(line, &rec); err != nil || rec.validate() != nil {
			s.skipped++
			continue
		}
		s.recs = append(s.recs, rec)
	}
	// O_APPEND positions every write at the current end of file, so no
	// seek is needed after the truncate — and a later append can never
	// land inside (or before) another store's record.
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, err
	}
	if s.skipped > 0 {
		return s, fmt.Errorf("%w: %s: %d of %d lines", ErrCorrupt, path, s.skipped, s.skipped+len(s.recs))
	}
	return s, nil
}

// NewMemStore returns a memory-only store: Add and Lookup work, no
// file is written, Close is a no-op.
func NewMemStore() *Store { return &Store{} }

// Add validates rec, appends it to the store, and — for a file-backed
// store — durably appends it as one JSON line (written and fsynced
// before Add returns, so a completed Add survives a crash).
func (s *Store) Add(rec Record) error {
	if err := rec.validate(); err != nil {
		return err
	}
	rec.X = append([]int(nil), rec.X...)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		// The flock serializes this append against every other Store
		// on the file (in this process or another); O_APPEND makes the
		// write land at the true end of file regardless of what they
		// appended since our Open.
		if err := lockFile(s.f); err != nil {
			return fmt.Errorf("history: append lock: %w", err)
		}
		_, werr := s.f.Write(line)
		serr := s.f.Sync()
		uerr := unlockFile(s.f)
		if werr != nil {
			return fmt.Errorf("history: append: %w", werr)
		}
		if serr != nil {
			return fmt.Errorf("history: append sync: %w", serr)
		}
		if uerr != nil {
			return fmt.Errorf("history: append unlock: %w", uerr)
		}
	}
	s.recs = append(s.recs, rec)
	return nil
}

// Lookup returns the best-known entry for key: the highest-throughput
// record at the exact key when one exists, otherwise the nearest
// neighbor across size and load buckets on the same endpoint
// (distance = |Δsize| + |Δload|; at equal distance the higher
// throughput wins, then the earlier record). ok is false when the
// endpoint has no records at all.
func (s *Store) Lookup(key Key) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	best := Entry{Distance: math.MaxInt}
	found := false
	for _, rec := range s.recs {
		if rec.Key.Endpoint != key.Endpoint {
			continue
		}
		d := abs(rec.Key.SizeClass-key.SizeClass) + abs(rec.Key.LoadClass-key.LoadClass)
		if !found || d < best.Distance || (d == best.Distance && rec.Throughput > best.Throughput) {
			best = Entry{X: append([]int(nil), rec.X...), Throughput: rec.Throughput, Distance: d}
			found = true
		}
	}
	return best, found
}

// Records returns a copy of every stored record for the endpoint, in
// insertion order (every endpoint when endpoint is empty).
func (s *Store) Records(endpoint string) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, rec := range s.recs {
		if endpoint == "" || rec.Key.Endpoint == endpoint {
			r := rec
			r.X = append([]int(nil), rec.X...)
			out = append(out, r)
		}
	}
	return out
}

// Keys returns the distinct keys present in the store, sorted.
func (s *Store) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := map[Key]bool{}
	var out []Key
	for _, rec := range s.recs {
		if !seen[rec.Key] {
			seen[rec.Key] = true
			out = append(out, rec.Key)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Endpoint != b.Endpoint {
			return a.Endpoint < b.Endpoint
		}
		if a.SizeClass != b.SizeClass {
			return a.SizeClass < b.SizeClass
		}
		return a.LoadClass < b.LoadClass
	})
	return out
}

// Len reports the number of stored records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Skipped reports how many lines Open discarded as unreadable.
func (s *Store) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// Close syncs and closes the backing file. Close is idempotent and a
// no-op for memory stores.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	f := s.f
	s.f = nil
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
