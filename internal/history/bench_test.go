package history

import (
	"fmt"
	"testing"
)

// BenchmarkHistoryLookup measures a Lookup over a populated store:
// half the queries hit their exact key, half fall back to the
// nearest-neighbor scan. Gated through BENCH_baseline.json by the CI
// bench job.
func BenchmarkHistoryLookup(b *testing.B) {
	s := NewMemStore()
	n := 0
	for ep := 0; ep < 8; ep++ {
		for size := -1; size < 13; size++ {
			for load := 0; load < 8; load++ {
				n++
				rec := Record{
					Key:        Key{Endpoint: fmt.Sprintf("endpoint-%d", ep), SizeClass: size, LoadClass: load},
					X:          []int{2 + n%30, 1 + n%8},
					Throughput: float64(1e8 + n),
				}
				if err := s.Add(rec); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	exact := Key{Endpoint: "endpoint-3", SizeClass: 6, LoadClass: 4}
	miss := Key{Endpoint: "endpoint-5", SizeClass: 40, LoadClass: 11}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := exact
		if i%2 == 1 {
			k = miss
		}
		if _, ok := s.Lookup(k); !ok {
			b.Fatal("lookup missed a populated endpoint")
		}
	}
}
