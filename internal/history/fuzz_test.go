package history

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenHistory mirrors FuzzLoadCheckpoint for the knowledge plane:
// no file content — truncation, interleaved garbage, binary damage —
// may make Open panic. Open either fails outright or returns a usable
// store whose accounting is consistent, and the recovered store must
// accept a fresh append and reload it.
func FuzzOpenHistory(f *testing.F) {
	f.Add([]byte(`{"key":{"endpoint":"uchicago","size_class":-1,"load_class":0},"x":[12],"throughput":2e8}` + "\n"))
	f.Add([]byte(`{"key":{"endpoint":"uchicago","size_class":-1,"load_class":5},"x":[20,4],"throughput":1e8,"tuner":"cs-tuner","epochs":40}` + "\n" +
		`{"key":{"endpoint":"tacc","size_class":12,"load_class":0},"x":[8],"throughput":5e8}` + "\n"))
	f.Add([]byte(`{"key":{"endpoint":"a","size_class":0,"load_class":0},"x":[2],"throughput":1}` + "\n" + `{"key":{"endpoint":"a","size_class":0,"load`))
	f.Add([]byte("not json\n{}\nnull\n"))
	f.Add([]byte{})
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"key":{"endpoint":"a"},"x":[-1],"throughput":1}` + "\n"))
	f.Add([]byte(`{"key":{"endpoint":"a"},"x":[2],"throughput":"fast"}` + "\n"))
	f.Add([]byte{0xff, 0xfe, 0x00, '\n', '{', '}'})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "history.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(path)
		if s == nil {
			if err == nil {
				t.Fatal("Open returned neither a store nor an error")
			}
			return
		}
		defer s.Close()
		if err != nil && s.Skipped() == 0 {
			t.Fatalf("Open reported %v but skipped nothing", err)
		}
		// Every surviving record satisfies the Add invariants.
		for _, rec := range s.Records("") {
			if rec.Key.Endpoint == "" || len(rec.X) == 0 {
				t.Fatalf("invalid record survived load: %+v", rec)
			}
		}
		// The recovered store must keep working: append and reload.
		rec := Record{Key: Key{Endpoint: "fuzz", SizeClass: 1, LoadClass: 1}, X: []int{3}, Throughput: 7}
		if err := s.Add(rec); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		before := s.Len()
		s.Close()
		re, rerr := Open(path)
		if re == nil {
			t.Fatalf("reopen after recovery append: %v", rerr)
		}
		defer re.Close()
		if re.Len() != before {
			t.Fatalf("reload holds %d records, the recovered store held %d", re.Len(), before)
		}
		found := false
		for _, r := range re.Records("fuzz") {
			if len(r.X) == 1 && r.X[0] == 3 && r.Throughput == 7 {
				found = true
			}
		}
		if !found {
			t.Fatal("recovery append lost on reload")
		}
	})
}
