//go:build unix

package history

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory flock on f, blocking until it
// is granted. flock locks belong to the open file description, so two
// Stores contend even when they live in one process (each Open has its
// own description); across processes a daemon and a CLI sharing one
// store serialize the same way. EINTR is retried — flock has no
// deadline and Go's signal handling can interrupt it.
func lockFile(f *os.File) error {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
		if err != syscall.EINTR {
			return err
		}
	}
}

// unlockFile releases the advisory lock taken by lockFile.
func unlockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
