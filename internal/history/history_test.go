package history

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestSizeClass(t *testing.T) {
	cases := []struct {
		bytes float64
		want  int
	}{
		{-1, -1}, {0, -1}, {math.Inf(1), -1}, // unbounded / +Inf
		{1, 0}, {1 << 20, 0}, {2 << 20, 1}, {3 << 20, 1},
		{4 << 20, 2}, {1 << 30, 10}, {5e9, 12},
	}
	for _, tc := range cases {
		if got := SizeClass(tc.bytes); got != tc.want {
			t.Errorf("SizeClass(%v) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
}

func TestLoadClass(t *testing.T) {
	cases := []struct{ level, want int }{
		{-3, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3},
		{16, 5}, {32, 6}, {64, 7},
	}
	for _, tc := range cases {
		if got := LoadClass(tc.level); got != tc.want {
			t.Errorf("LoadClass(%d) = %d, want %d", tc.level, got, tc.want)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Key: Key{Endpoint: "uchicago", SizeClass: -1, LoadClass: 0}, X: []int{14}, Throughput: 3.1e8, Tuner: "cs-tuner", Epochs: 40},
		{Key: Key{Endpoint: "uchicago", SizeClass: -1, LoadClass: 5}, X: []int{22, 4}, Throughput: 2.2e8, Tuner: "cd-tuner", Epochs: 55},
		{Key: Key{Endpoint: "tacc", SizeClass: 12, LoadClass: 0}, X: []int{8}, Throughput: 5e8},
	}
	for _, r := range recs {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.Len() != len(recs) {
		t.Fatalf("reopened store holds %d records, want %d", re.Len(), len(recs))
	}
	if got := re.Records("uchicago"); len(got) != 2 || !reflect.DeepEqual(got[0], recs[0]) {
		t.Fatalf("Records(uchicago) = %+v", got)
	}
	if keys := re.Keys(); len(keys) != 3 || keys[0].Endpoint != "tacc" {
		t.Fatalf("Keys() = %+v", keys)
	}
	// Appends after reopen extend, not clobber.
	extra := Record{Key: Key{Endpoint: "tacc", SizeClass: 12, LoadClass: 1}, X: []int{6}, Throughput: 4e8}
	if err := re.Add(extra); err != nil {
		t.Fatal(err)
	}
	re.Close()
	again, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Len() != len(recs)+1 {
		t.Fatalf("after append-reopen store holds %d records, want %d", again.Len(), len(recs)+1)
	}
}

func TestLookup(t *testing.T) {
	s := NewMemStore()
	add := func(ep string, size, load int, x []int, tp float64) {
		t.Helper()
		if err := s.Add(Record{Key: Key{Endpoint: ep, SizeClass: size, LoadClass: load}, X: x, Throughput: tp}); err != nil {
			t.Fatal(err)
		}
	}
	add("uchicago", -1, 0, []int{10}, 2e8)
	add("uchicago", -1, 0, []int{14}, 3e8) // better record at the same key
	add("uchicago", -1, 5, []int{20}, 1.5e8)
	add("tacc", -1, 0, []int{30}, 9e8)

	// Exact match picks the highest throughput at the key.
	e, ok := s.Lookup(Key{Endpoint: "uchicago", SizeClass: -1, LoadClass: 0})
	if !ok || !reflect.DeepEqual(e.X, []int{14}) || e.Distance != 0 {
		t.Fatalf("exact lookup = %+v ok=%v", e, ok)
	}
	// Nearest neighbor across load buckets.
	e, ok = s.Lookup(Key{Endpoint: "uchicago", SizeClass: -1, LoadClass: 6})
	if !ok || !reflect.DeepEqual(e.X, []int{20}) || e.Distance != 1 {
		t.Fatalf("nearest lookup = %+v ok=%v", e, ok)
	}
	// Never crosses endpoints.
	if _, ok := s.Lookup(Key{Endpoint: "lbl", SizeClass: -1, LoadClass: 0}); ok {
		t.Fatal("lookup crossed endpoints")
	}
	// Mutating a result must not corrupt the store.
	e, _ = s.Lookup(Key{Endpoint: "tacc", SizeClass: -1, LoadClass: 0})
	e.X[0] = 99
	if e2, _ := s.Lookup(Key{Endpoint: "tacc", SizeClass: -1, LoadClass: 0}); e2.X[0] != 30 {
		t.Fatal("lookup result aliases store memory")
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	s := NewMemStore()
	bad := []Record{
		{X: []int{2}, Throughput: 1},                                    // no endpoint
		{Key: Key{Endpoint: "a"}, Throughput: 1},                        // no vector
		{Key: Key{Endpoint: "a"}, X: []int{0}, Throughput: 1},           // coordinate < 1
		{Key: Key{Endpoint: "a"}, X: []int{2}, Throughput: -1},          // negative
		{Key: Key{Endpoint: "a"}, X: []int{2}, Throughput: math.Inf(1)}, // +Inf
	}
	for i, r := range bad {
		if err := s.Add(r); err == nil {
			t.Errorf("record %d accepted: %+v", i, r)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("store holds %d records after rejected adds", s.Len())
	}
}

// TestOpenSkipsTornTail is the crash-recovery property: a file whose
// final line was torn mid-append loads every complete record, reports
// the damage through ErrCorrupt, and keeps accepting appends.
func TestOpenSkipsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	good := `{"key":{"endpoint":"uchicago","size_class":-1,"load_class":0},"x":[12],"throughput":2e8}` + "\n"
	torn := `{"key":{"endpoint":"uchicago","size_class":-1,"load_class":5},"x":[20],"thr`
	if err := os.WriteFile(path, []byte(good+good+torn), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if s == nil {
		t.Fatalf("torn tail made Open fail outright: %v", err)
	}
	defer s.Close()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open error = %v, want ErrCorrupt", err)
	}
	if s.Len() != 2 || s.Skipped() != 1 {
		t.Fatalf("loaded %d records, skipped %d; want 2 and 1", s.Len(), s.Skipped())
	}
	// The next append must still land on its own line and be readable.
	if err := s.Add(Record{Key: Key{Endpoint: "uchicago", SizeClass: 3, LoadClass: 1}, X: []int{7}, Throughput: 1e8}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	re, err := Open(path)
	if re == nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 3 {
		t.Fatalf("after recovery append the store reloads %d records, want 3", re.Len())
	}
}

// TestOpenSkipsGarbageLines: hand-damaged and semantically invalid
// lines are skipped with an error, never a panic, and never poison the
// surrounding records.
func TestOpenSkipsGarbageLines(t *testing.T) {
	lines := []string{
		`{"key":{"endpoint":"a","size_class":0,"load_class":0},"x":[2],"throughput":1}`,
		`not json at all`,
		`{}`,
		`{"key":{"endpoint":"a"},"x":[],"throughput":1}`,
		`{"key":{"endpoint":"a"},"x":[2],"throughput":-5}`,
		`null`,
		``,
		`{"key":{"endpoint":"b","size_class":1,"load_class":2},"x":[4,8],"throughput":3}`,
	}
	path := filepath.Join(t.TempDir(), "history.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if s == nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if s.Len() != 2 {
		t.Fatalf("loaded %d records, want 2", s.Len())
	}
	// The blank line is tolerated silently; 5 lines are damage.
	if s.Skipped() != 5 {
		t.Fatalf("skipped %d lines, want 5", s.Skipped())
	}
}

// TestOpenOverlongLine: a line beyond the scanner limit cannot panic
// or block loading; the records before it survive.
func TestOpenOverlongLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	good := `{"key":{"endpoint":"a","size_class":0,"load_class":0},"x":[2],"throughput":1}` + "\n"
	long := strings.Repeat("x", maxLine+10)
	if err := os.WriteFile(path, []byte(good+long), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if s == nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if s.Len() != 1 {
		t.Fatalf("loaded %d records, want 1", s.Len())
	}
}

func TestMemStoreClose(t *testing.T) {
	s := NewMemStore()
	if err := s.Add(Record{Key: Key{Endpoint: "a"}, X: []int{2}, Throughput: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	var nilStore *Store
	if err := nilStore.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Endpoint: "uchicago", SizeClass: -1, LoadClass: 6}
	if got, want := k.String(), "uchicago/size=-1/load=6"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if !(Key{}).IsZero() || k.IsZero() {
		t.Fatal("IsZero misreports")
	}
	if fmt.Sprint(k) != k.String() {
		t.Fatal("Stringer not wired")
	}
}
