//go:build !unix

package history

import "os"

// lockFile is a no-op on platforms without flock: appends fall back to
// the in-process mutex only, and cross-process writers are not
// serialized. O_APPEND still keeps concurrent single-line appends from
// overwriting one another on most filesystems.
func lockFile(*os.File) error { return nil }

// unlockFile is the no-op counterpart of lockFile.
func unlockFile(*os.File) error { return nil }
