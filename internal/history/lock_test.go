package history

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestConcurrentStoresShareFile pins the cross-process append
// contract: two independent Stores on one file (each with its own open
// file description, exactly like a daemon and a CLI sharing a
// knowledge base) append concurrently without interleaving or tearing
// a single record. flock serializes the writers and O_APPEND pins
// every write to the true end of file, so a reopen parses every line.
func TestConcurrentStoresShareFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	s1, err := Open(path)
	if err != nil {
		t.Fatalf("Open s1: %v", err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("Open s2: %v", err)
	}

	const perWriter = 100
	var wg sync.WaitGroup
	for w, s := range []*Store{s1, s2} {
		wg.Add(1)
		go func(w int, s *Store) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := Record{
					Key: Key{Endpoint: fmt.Sprintf("ep-%d", w), SizeClass: i % 7, LoadClass: i % 5},
					// A long vector makes each line big enough that a
					// torn interleave could not still parse by luck.
					X:          []int{w + 1, i + 1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
					Throughput: float64(i + 1),
					Tuner:      "cs-tuner",
					Epochs:     i,
				}
				if err := s.Add(rec); err != nil {
					t.Errorf("writer %d add %d: %v", w, i, err)
					return
				}
			}
		}(w, s)
	}
	wg.Wait()
	if err := s1.Close(); err != nil {
		t.Fatalf("close s1: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("close s2: %v", err)
	}

	reopened, err := Open(path)
	if err != nil {
		t.Fatalf("reopen found corruption: %v", err)
	}
	defer reopened.Close()
	if got := reopened.Skipped(); got != 0 {
		t.Fatalf("reopen skipped %d lines, want 0", got)
	}
	if got, want := reopened.Len(), 2*perWriter; got != want {
		t.Fatalf("reopen holds %d records, want %d", got, want)
	}
	for w := 0; w < 2; w++ {
		if got := len(reopened.Records(fmt.Sprintf("ep-%d", w))); got != perWriter {
			t.Fatalf("endpoint ep-%d has %d records, want %d", w, got, perWriter)
		}
	}
}

// TestOpenRecoveryHoldsLock pins that a store opened while another
// holds the file keeps working: the second Open's recovery scan runs
// under the lock and sees only complete records.
func TestOpenRecoveryHoldsLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	s1, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if err := s1.Add(Record{Key: Key{Endpoint: "e"}, X: []int{4}, Throughput: 1}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("second open: %v", err)
	}
	if err != nil {
		t.Fatalf("second open reported corruption on a clean file: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("second store sees %d records, want 1", s2.Len())
	}
}
