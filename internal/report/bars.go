package report

import (
	"fmt"
	"math"
	"strings"
)

// BarGroup is one category of a grouped bar chart, with one value per
// series.
type BarGroup struct {
	Label  string
	Values []float64
}

// BarChart is a grouped column chart: thin bars with 4px rounded data
// ends, a 2px surface gap between adjacent bars, value labels at the
// tips, per-mark hover tooltips, and a table view.
type BarChart struct {
	Title       string
	Subtitle    string
	YLabel      string
	SeriesNames []string
	Groups      []BarGroup
}

// HTML renders the chart as a <figure>.
func (c *BarChart) HTML() string {
	slots := assignSlots(c.SeriesNames)
	maxY := 0.0
	for _, g := range c.Groups {
		for _, v := range g.Values {
			maxY = math.Max(maxY, v)
		}
	}
	yTicks := niceTicks(0, maxY)
	yTop := yTicks[len(yTicks)-1]
	plotX0, plotX1 := float64(padL), float64(chartW-24)
	plotY0, plotY1 := float64(padT), float64(chartH-padB)

	var svg svgBuilder
	for _, t := range yTicks {
		y := scale(t, 0, yTop, plotY1, plotY0)
		svg.linef(plotX0, y, plotX1, y, `stroke="var(--grid)" stroke-width="1"`)
		svg.text(plotX0-8, y+4, "end", "tick", compact(t))
	}
	svg.linef(plotX0, plotY1, plotX1, plotY1, `stroke="var(--axis)" stroke-width="1"`)
	if c.YLabel != "" {
		svg.text(plotX0-8, plotY0-4, "end", "axis-label", c.YLabel)
	}

	nG, nS := len(c.Groups), len(c.SeriesNames)
	if nG == 0 || nS == 0 {
		return ""
	}
	band := (plotX1 - plotX0) / float64(nG)
	const gap = 2.0 // surface gap between touching bars
	barW := math.Min(24, (band*0.6-gap*float64(nS-1))/float64(nS))
	groupW := barW*float64(nS) + gap*float64(nS-1)

	for gi, g := range c.Groups {
		gx := plotX0 + band*float64(gi) + (band-groupW)/2
		for si := 0; si < nS && si < len(g.Values); si++ {
			v := g.Values[si]
			x := gx + float64(si)*(barW+gap)
			y := scale(v, 0, yTop, plotY1, plotY0)
			h := plotY1 - y
			extra := fmt.Sprintf(
				`class="bar" tabindex="0" data-name="%s" data-label="%s" data-value="%s %s"`,
				esc(c.SeriesNames[si]), esc(g.Label), esc(fnum(v)), esc(c.YLabel))
			svg.roundTopBar(x, y, barW, h, colorVar(slots[si]), extra)
			// Value at the tip (small group counts keep this sparse).
			if nS*nG <= 12 {
				svg.text(x+barW/2, y-6, "middle", "direct-label", compact(v))
			}
		}
		svg.text(gx+groupW/2, plotY1+18, "middle", "tick", g.Label)
	}

	var b strings.Builder
	b.WriteString(`<figure class="chart" data-kind="bar">`)
	writeHeading(&b, c.Title, c.Subtitle)
	fmt.Fprintf(&b, `<svg viewBox="0 0 %d %d" role="img" aria-label="%s">%s</svg>`,
		chartW, chartH, esc(c.Title), svg.String())
	if nS >= 2 {
		b.WriteString(legend(c.SeriesNames, slots, "bar"))
	}
	b.WriteString(barTable(c))
	b.WriteString(`</figure>`)
	return b.String()
}

// barTable renders the table-view twin of a grouped bar chart.
func barTable(c *BarChart) string {
	var b strings.Builder
	b.WriteString(`<details class="table-view"><summary>Table view</summary><table><thead><tr><th></th>`)
	for _, n := range c.SeriesNames {
		fmt.Fprintf(&b, `<th>%s</th>`, esc(n))
	}
	b.WriteString(`</tr></thead><tbody>`)
	for _, g := range c.Groups {
		fmt.Fprintf(&b, `<tr><td>%s</td>`, esc(g.Label))
		for i := range c.SeriesNames {
			if i < len(g.Values) {
				fmt.Fprintf(&b, `<td>%s</td>`, fnum(g.Values[i]))
			} else {
				b.WriteString(`<td>—</td>`)
			}
		}
		b.WriteString(`</tr>`)
	}
	b.WriteString(`</tbody></table></details>`)
	return b.String()
}

// Tile is one stat tile: a label, a compact value, and an optional
// note (e.g. the paper's reported number).
type Tile struct {
	Label string
	Value string
	Note  string
}

// TileRow renders a KPI row of stat tiles.
func TileRow(tiles []Tile) string {
	var b strings.Builder
	b.WriteString(`<div class="tiles">`)
	for _, t := range tiles {
		fmt.Fprintf(&b,
			`<div class="tile"><div class="tile-label">%s</div><div class="tile-value">%s</div>`,
			esc(t.Label), esc(t.Value))
		if t.Note != "" {
			fmt.Fprintf(&b, `<div class="tile-note">%s</div>`, esc(t.Note))
		}
		b.WriteString(`</div>`)
	}
	b.WriteString(`</div>`)
	return b.String()
}
