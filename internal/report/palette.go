// Package report renders experiment results as a single
// self-contained HTML file with inline SVG charts: multi-series line
// charts for the paper's time-series figures, grouped bars for the
// scenario comparisons, stat tiles for the headline claims, and a
// table view twin for every chart.
//
// The visual method follows a validated design system: a fixed
// eight-slot categorical palette (checked for colorblind separation
// and surface contrast in both light and dark modes), thin marks,
// hairline solid gridlines, a legend for every multi-series chart with
// selective direct labels, hover crosshair/tooltips that enhance but
// never gate (every value is also in the table view), and dark mode as
// selected steps of the same hues rather than an automatic flip.
package report

import "fmt"

// series slot hexes — the validated categorical palette, light and
// dark steps of the same hues. Order is fixed; it is the
// colorblind-safety mechanism.
var (
	seriesLight = []string{
		"#2a78d6", // 1 blue
		"#1baf7a", // 2 aqua
		"#eda100", // 3 yellow
		"#008300", // 4 green
		"#4a3aa7", // 5 violet
		"#e34948", // 6 red
		"#e87ba4", // 7 magenta
		"#eb6834", // 8 orange
	}
	seriesDark = []string{
		"#3987e5", "#199e70", "#c98500", "#008300",
		"#9085e9", "#e66767", "#d55181", "#d95926",
	}
)

// slotFor fixes each known entity (tuner name) to a palette slot so
// its color never changes across figures or filters; unknown names
// take slots in order of first use within a chart.
var slotFor = map[string]int{
	"default":  0,
	"cd-tuner": 1,
	"cs-tuner": 2,
	"nm-tuner": 3,
	"heur1":    4,
	"heur2":    5,
	"model":    6,
	"UChicago": 0,
	"TACC":     1,
}

// cssVars emits the custom-property block: chart chrome plus the
// series slots, with the dark values behind prefers-color-scheme.
func cssVars() string {
	light := `  --surface: #fcfcfb;
  --page: #f9f9f7;
  --ink: #0b0b0b;
  --ink-2: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
`
	dark := `  --surface: #1a1a19;
  --page: #0d0d0d;
  --ink: #ffffff;
  --ink-2: #c3c2b7;
  --muted: #898781;
  --grid: #2c2c2a;
  --axis: #383835;
  --border: rgba(255,255,255,0.10);
`
	out := ":root {\n" + light
	for i, c := range seriesLight {
		out += fmt.Sprintf("  --s%d: %s;\n", i+1, c)
	}
	out += "}\n@media (prefers-color-scheme: dark) {\n:root {\n" + dark
	for i, c := range seriesDark {
		out += fmt.Sprintf("  --s%d: %s;\n", i+1, c)
	}
	out += "}\n}\n"
	return out
}

// colorVar returns the CSS variable reference for slot i (0-based).
func colorVar(i int) string { return fmt.Sprintf("var(--s%d)", i%len(seriesLight)+1) }

// assignSlots maps series names to palette slots: known entities keep
// their fixed slot; the rest fill unused slots in order.
func assignSlots(names []string) []int {
	out := make([]int, len(names))
	used := map[int]bool{}
	for i, n := range names {
		if s, ok := slotFor[n]; ok {
			out[i] = s
			used[s] = true
		} else {
			out[i] = -1
		}
	}
	next := 0
	for i := range out {
		if out[i] >= 0 {
			continue
		}
		for used[next] {
			next++
		}
		out[i] = next % len(seriesLight)
		used[out[i]] = true
	}
	return out
}
