package report

import (
	"encoding/xml"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// extractSVGs pulls every <svg>…</svg> block out of rendered HTML.
func extractSVGs(html string) []string {
	var out []string
	rest := html
	for {
		i := strings.Index(rest, "<svg")
		if i < 0 {
			return out
		}
		j := strings.Index(rest[i:], "</svg>")
		if j < 0 {
			return out
		}
		out = append(out, rest[i:i+j+len("</svg>")])
		rest = rest[i+j:]
	}
}

// checkSVG asserts an SVG block is well-formed XML and all coordinate
// attributes are finite and within the viewBox (with slack for label
// overhang into the padding gutters).
func checkSVG(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	coordAttr := map[string]bool{
		"x": true, "y": true, "x1": true, "y1": true, "x2": true, "y2": true,
		"cx": true, "cy": true, "r": true,
	}
	numRe := regexp.MustCompile(`-?\d+(\.\d+)?`)
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg[:min(400, len(svg))])
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		for _, a := range se.Attr {
			if a.Name.Local == "points" || a.Name.Local == "d" {
				for _, m := range numRe.FindAllString(a.Value, -1) {
					v, err := strconv.ParseFloat(m, 64)
					if err != nil || v < -200 || v > chartW+200 {
						t.Fatalf("path/points coordinate %q out of range in <%s>", m, se.Name.Local)
					}
				}
				if strings.Contains(a.Value, "NaN") || strings.Contains(a.Value, "Inf") {
					t.Fatalf("non-finite coordinate in <%s %s>", se.Name.Local, a.Name.Local)
				}
				continue
			}
			if !coordAttr[a.Name.Local] {
				continue
			}
			v, err := strconv.ParseFloat(a.Value, 64)
			if err != nil {
				t.Fatalf("attr %s=%q not numeric in <%s>", a.Name.Local, a.Value, se.Name.Local)
			}
			if v < -40 || v > chartW+40 {
				t.Fatalf("attr %s=%v outside the canvas in <%s>", a.Name.Local, v, se.Name.Local)
			}
		}
	}
}

// TestRenderedSVGsWellFormed renders representative charts — including
// degenerate shapes — and structurally validates every SVG. This
// stands in for the visual pass in a headless environment.
func TestRenderedSVGsWellFormed(t *testing.T) {
	r := New("check", "structural render check")
	r.AddLine(sampleLine())
	// Single flat series.
	r.AddLine(&LineChart{
		Title: "flat", YLabel: "MB/s",
		Series: []LineSeries{{Name: "only", X: []float64{0, 10, 20}, Y: []float64{5, 5, 5}}},
	})
	// Converging series (end labels collide -> legend fallback).
	r.AddLine(&LineChart{
		Title: "converge", YLabel: "MB/s",
		Series: []LineSeries{
			{Name: "a", X: []float64{0, 10}, Y: []float64{100, 200}},
			{Name: "b", X: []float64{0, 10}, Y: []float64{300, 201}},
		},
	})
	// Ragged series lengths.
	r.AddLine(&LineChart{
		Title: "ragged", YLabel: "MB/s",
		Series: []LineSeries{
			{Name: "long", X: []float64{0, 10, 20, 30}, Y: []float64{1, 2, 3, 4}},
			{Name: "short", X: []float64{0, 10}, Y: []float64{4, 3}},
		},
	})
	// Many-group bar chart (labels suppressed past 12 marks).
	big := &BarChart{Title: "sweep", YLabel: "MB/s", SeriesNames: []string{"x", "y"}}
	for i := 0; i < 10; i++ {
		big.Groups = append(big.Groups, BarGroup{Label: strconv.Itoa(1 << i), Values: []float64{float64(i), float64(i * 2)}})
	}
	r.AddBar(big)
	// Tiny values (rounded tops must not invert).
	r.AddBar(&BarChart{
		Title: "tiny", YLabel: "MB/s", SeriesNames: []string{"v"},
		Groups: []BarGroup{{Label: "a", Values: []float64{0.001}}, {Label: "b", Values: []float64{100}}},
	})

	var buf strings.Builder
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	svgs := extractSVGs(buf.String())
	if len(svgs) != 6 {
		t.Fatalf("extracted %d SVGs, want 6", len(svgs))
	}
	for i, s := range svgs {
		t.Run(strconv.Itoa(i), func(t *testing.T) { checkSVG(t, s) })
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestEndLabelCollisionFallsBack verifies the converging-series case
// drops direct labels rather than stacking them.
func TestEndLabelCollisionFallsBack(t *testing.T) {
	c := &LineChart{
		Title: "converge", YLabel: "MB/s",
		Series: []LineSeries{
			{Name: "alpha-series", X: []float64{0, 10}, Y: []float64{100, 200}},
			{Name: "beta-series", X: []float64{0, 10}, Y: []float64{300, 202}},
		},
	}
	h := c.HTML()
	if strings.Contains(h, `class="direct-label">alpha-series`) {
		t.Fatal("colliding end labels were rendered anyway")
	}
	// Identity still carried by the legend.
	if !strings.Contains(h, `class="legend"`) {
		t.Fatal("no legend to fall back on")
	}
}
