package report

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Chart geometry shared by the figures.
const (
	chartW  = 760
	chartH  = 300
	padL    = 64  // y-axis band
	padR    = 120 // end-label gutter
	padT    = 18
	padB    = 40 // x-axis band — included in the fixed height
	tileMin = 170
)

// LineSeries is one series of a line chart. X and Y must have equal
// length; series in one chart may have different X grids (e.g. a
// transfer that finished early).
type LineSeries struct {
	Name string
	X, Y []float64
}

// LineChart is a multi-series line chart with a hover crosshair, a
// legend (for two or more series), selective direct end-labels, and a
// table view.
type LineChart struct {
	Title    string
	Subtitle string
	YLabel   string
	XLabel   string
	Series   []LineSeries
}

// jsonPayload is the data handed to the hover layer.
type jsonPayload struct {
	Kind   string       `json:"kind"`
	X0     float64      `json:"x0"`
	X1     float64      `json:"x1"`
	PX0    float64      `json:"px0"`
	PX1    float64      `json:"px1"`
	PY0    float64      `json:"py0"`
	PY1    float64      `json:"py1"`
	YLabel string       `json:"ylabel"`
	Series []jsonSeries `json:"series"`
}

type jsonSeries struct {
	Name  string    `json:"name"`
	Color string    `json:"color"`
	X     []float64 `json:"x"`
	Y     []float64 `json:"y"`
}

// HTML renders the chart as a <figure>.
func (c *LineChart) HTML() string {
	slots := assignSlots(seriesNames(c.Series))

	// Domains.
	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		minX, maxX, maxY = 0, 1, 1
	}
	yTicks := niceTicks(0, maxY)
	yTop := yTicks[len(yTicks)-1]
	plotX0, plotX1 := float64(padL), float64(chartW-padR)
	plotY0, plotY1 := float64(padT), float64(chartH-padB)

	var svg svgBuilder
	// Gridlines: hairline, solid, recessive; y ticks in muted ink.
	for _, t := range yTicks {
		y := scale(t, 0, yTop, plotY1, plotY0)
		svg.linef(plotX0, y, plotX1, y, `stroke="var(--grid)" stroke-width="1"`)
		svg.text(plotX0-8, y+4, "end", "tick", compact(t))
	}
	// Baseline and x ticks.
	svg.linef(plotX0, plotY1, plotX1, plotY1, `stroke="var(--axis)" stroke-width="1"`)
	for _, t := range niceTicks(minX, maxX) {
		if t < minX-1e-9 || t > maxX+1e-9 {
			continue
		}
		x := scale(t, minX, maxX, plotX0, plotX1)
		svg.text(x, plotY1+18, "middle", "tick", compact(t))
	}
	if c.XLabel != "" {
		svg.text((plotX0+plotX1)/2, float64(chartH)-6, "middle", "axis-label", c.XLabel)
	}
	if c.YLabel != "" {
		svg.text(plotX0-8, plotY0-4, "end", "axis-label", c.YLabel)
	}

	// Series lines + end dots.
	var ends []endInfo
	payload := jsonPayload{
		Kind: "line", X0: minX, X1: maxX,
		PX0: plotX0, PX1: plotX1, PY0: plotY0, PY1: plotY1,
		YLabel: c.YLabel,
	}
	for i, s := range c.Series {
		color := colorVar(slots[i])
		xs := make([]float64, len(s.X))
		ys := make([]float64, len(s.Y))
		for j := range s.X {
			xs[j] = scale(s.X[j], minX, maxX, plotX0, plotX1)
			ys[j] = scale(s.Y[j], 0, yTop, plotY1, plotY0)
		}
		if len(xs) > 0 {
			svg.polyline(xs, ys, color)
			svg.endDot(xs[len(xs)-1], ys[len(ys)-1], color)
			ends = append(ends, endInfo{name: s.Name, x: xs[len(xs)-1], y: ys[len(ys)-1]})
		}
		payload.Series = append(payload.Series, jsonSeries{
			Name: s.Name, Color: color, X: s.X, Y: s.Y,
		})
	}

	// Direct end labels — only when they don't collide; the legend
	// always carries identity for multi-series charts anyway.
	if len(c.Series) <= 4 && !collide(ends) {
		for _, e := range ends {
			svg.text(e.x+10, e.y+4, "start", "direct-label", e.name)
		}
	}

	// Crosshair + focus overlay live in the hover layer (JS).
	data, _ := json.Marshal(payload)

	var b strings.Builder
	b.WriteString(`<figure class="chart" data-kind="line">`)
	writeHeading(&b, c.Title, c.Subtitle)
	fmt.Fprintf(&b,
		`<svg viewBox="0 0 %d %d" role="img" aria-label="%s" tabindex="0">%s</svg>`,
		chartW, chartH, esc(c.Title), svg.String())
	fmt.Fprintf(&b, `<script type="application/json" class="chart-data">%s</script>`,
		string(data))
	if len(c.Series) >= 2 {
		b.WriteString(legend(seriesNames(c.Series), slots, "line"))
	}
	b.WriteString(lineTable(c))
	b.WriteString(`</figure>`)
	return b.String()
}

// endInfo locates a series' final point for direct labelling.
type endInfo struct {
	name string
	x, y float64
}

// collide reports whether any two end labels would overlap
// vertically at the shared right edge.
func collide(ends []endInfo) bool {
	for i := 0; i < len(ends); i++ {
		for j := i + 1; j < len(ends); j++ {
			if math.Abs(ends[i].y-ends[j].y) < 14 {
				return true
			}
		}
	}
	return false
}

// seriesNames extracts the names of line series.
func seriesNames(ss []LineSeries) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

// compact renders an axis tick value: clean numbers, thousands kept
// short.
func compact(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fnum(v/1e6) + "M"
	case av >= 1e4:
		return fnum(v/1e3) + "k"
	default:
		return fnum(v)
	}
}

// writeHeading emits the figure title/subtitle block.
func writeHeading(b *strings.Builder, title, subtitle string) {
	fmt.Fprintf(b, `<figcaption><span class="title">%s</span>`, esc(title))
	if subtitle != "" {
		fmt.Fprintf(b, `<span class="subtitle">%s</span>`, esc(subtitle))
	}
	b.WriteString(`</figcaption>`)
}

// legend renders the identity legend; kind "line" uses a short
// line-key stroke, "bar" a small rect swatch.
func legend(names []string, slots []int, kind string) string {
	var b strings.Builder
	b.WriteString(`<div class="legend">`)
	for i, n := range names {
		key := fmt.Sprintf(`<span class="key key-%s" style="background:%s"></span>`, kind, colorVar(slots[i]))
		fmt.Fprintf(&b, `<span class="entry">%s%s</span>`, key, esc(n))
	}
	b.WriteString(`</div>`)
	return b.String()
}

// lineTable renders the table-view twin of a line chart.
func lineTable(c *LineChart) string {
	var b strings.Builder
	b.WriteString(`<details class="table-view"><summary>Table view</summary><table><thead><tr><th>` +
		esc(firstNonEmpty(c.XLabel, "x")) + `</th>`)
	for _, s := range c.Series {
		fmt.Fprintf(&b, `<th>%s</th>`, esc(s.Name))
	}
	b.WriteString(`</tr></thead><tbody>`)
	// Row per x of the longest series; series with other grids show
	// their nearest sample.
	longest := 0
	for i, s := range c.Series {
		if len(s.X) > len(c.Series[longest].X) {
			longest = i
		}
	}
	if len(c.Series) > 0 {
		for _, x := range c.Series[longest].X {
			fmt.Fprintf(&b, `<tr><td>%s</td>`, fnum(x))
			for _, s := range c.Series {
				if v, ok := nearestY(s, x); ok {
					fmt.Fprintf(&b, `<td>%s</td>`, fnum(v))
				} else {
					b.WriteString(`<td>—</td>`)
				}
			}
			b.WriteString(`</tr>`)
		}
	}
	b.WriteString(`</tbody></table></details>`)
	return b.String()
}

// nearestY returns the series value at the sample nearest to x,
// provided it is within half the series' median step.
func nearestY(s LineSeries, x float64) (float64, bool) {
	if len(s.X) == 0 {
		return 0, false
	}
	best, bd := 0, math.Inf(1)
	for i, sx := range s.X {
		if d := math.Abs(sx - x); d < bd {
			best, bd = i, d
		}
	}
	step := math.Inf(1)
	if len(s.X) > 1 {
		step = (s.X[len(s.X)-1] - s.X[0]) / float64(len(s.X)-1)
	}
	if bd > step*0.75 {
		return 0, false
	}
	return s.Y[best], true
}

// firstNonEmpty returns the first non-empty string.
func firstNonEmpty(ss ...string) string {
	for _, s := range ss {
		if s != "" {
			return s
		}
	}
	return ""
}
