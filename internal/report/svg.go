package report

import (
	"fmt"
	"math"
	"strings"
)

// esc escapes text for HTML and SVG content and attributes. Series
// and scenario names are treated as untrusted data.
func esc(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;",
		"<", "&lt;",
		">", "&gt;",
		`"`, "&quot;",
		"'", "&#39;",
	)
	return r.Replace(s)
}

// fnum renders a float compactly for labels and tables.
func fnum(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// niceTicks returns 3-6 round tick values spanning [0|min, max] using
// the classic 1-2-5 progression. The range is expanded to include
// zero when min is non-negative (bars and throughputs are anchored at
// a zero baseline).
func niceTicks(min, max float64) []float64 {
	if min > 0 {
		min = 0
	}
	if max <= min {
		max = min + 1
	}
	span := max - min
	rawStep := span / 4
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	switch {
	case rawStep/mag <= 1:
		step = mag
	case rawStep/mag <= 2:
		step = 2 * mag
	case rawStep/mag <= 5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	start := math.Floor(min/step) * step
	end := math.Ceil(max/step-1e-9) * step
	var ticks []float64
	for v := start; v <= end+step*1e-9; v += step {
		// Clean up float error near zero.
		if math.Abs(v) < step*1e-9 {
			v = 0
		}
		ticks = append(ticks, v)
	}
	return ticks
}

// scale maps v linearly from [d0, d1] to [r0, r1].
func scale(v, d0, d1, r0, r1 float64) float64 {
	if d1 == d0 {
		return (r0 + r1) / 2
	}
	return r0 + (v-d0)/(d1-d0)*(r1-r0)
}

// svgBuilder accumulates SVG elements.
type svgBuilder struct {
	b strings.Builder
}

func (s *svgBuilder) linef(x1, y1, x2, y2 float64, style string) {
	fmt.Fprintf(&s.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" %s/>`, x1, y1, x2, y2, style)
}

func (s *svgBuilder) text(x, y float64, anchor, class, content string) {
	fmt.Fprintf(&s.b, `<text x="%.1f" y="%.1f" text-anchor="%s" class="%s">%s</text>`, x, y, anchor, class, esc(content))
}

func (s *svgBuilder) raw(markup string) { s.b.WriteString(markup) }

func (s *svgBuilder) String() string { return s.b.String() }

// polyline renders a 2px round-capped series line through the points.
func (s *svgBuilder) polyline(xs, ys []float64, color string) {
	var pts strings.Builder
	for i := range xs {
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", xs[i], ys[i])
	}
	fmt.Fprintf(&s.b,
		`<polyline points="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>`,
		pts.String(), color)
}

// endDot renders the series end marker: an 8px dot with a 2px
// surface ring so it stays legible over other lines.
func (s *svgBuilder) endDot(x, y float64, color string) {
	fmt.Fprintf(&s.b,
		`<circle cx="%.1f" cy="%.1f" r="4" fill="%s" stroke="var(--surface)" stroke-width="2"/>`,
		x, y, color)
}

// roundTopBar renders a bar with a 4px rounded data-end and a square
// baseline end, growing upward from the baseline.
func (s *svgBuilder) roundTopBar(x, y, w, h float64, color, extra string) {
	r := 4.0
	if h < r {
		r = h
	}
	if w < 2*r {
		r = w / 2
	}
	path := fmt.Sprintf("M%.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Z",
		x, y+h, // bottom-left
		x, y+r,
		x, y, x+r, y, // top-left corner
		x+w-r, y,
		x+w, y, x+w, y+r, // top-right corner
		x+w, y+h,
	)
	fmt.Fprintf(&s.b, `<path d="%s" fill="%s" %s/>`, path, color, extra)
}
