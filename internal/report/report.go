package report

import (
	"fmt"
	"io"
	"strings"
)

// Report assembles sections into one self-contained HTML page.
type Report struct {
	Title    string
	Subtitle string
	sections []string
}

// New returns an empty report.
func New(title, subtitle string) *Report {
	return &Report{Title: title, Subtitle: subtitle}
}

// AddHeading appends a section heading with optional prose.
func (r *Report) AddHeading(h, prose string) {
	s := fmt.Sprintf(`<h2>%s</h2>`, esc(h))
	if prose != "" {
		s += fmt.Sprintf(`<p class="prose">%s</p>`, esc(prose))
	}
	r.sections = append(r.sections, s)
}

// AddLine appends a line chart.
func (r *Report) AddLine(c *LineChart) { r.sections = append(r.sections, c.HTML()) }

// AddBar appends a grouped bar chart.
func (r *Report) AddBar(c *BarChart) { r.sections = append(r.sections, c.HTML()) }

// AddTiles appends a stat-tile row.
func (r *Report) AddTiles(tiles []Tile) { r.sections = append(r.sections, TileRow(tiles)) }

// AddTable appends a plain data table.
func (r *Report) AddTable(header []string, rows [][]string) {
	var b strings.Builder
	b.WriteString(`<div class="chart"><table class="plain"><thead><tr>`)
	for _, h := range header {
		fmt.Fprintf(&b, `<th>%s</th>`, esc(h))
	}
	b.WriteString(`</tr></thead><tbody>`)
	for _, row := range rows {
		b.WriteString(`<tr>`)
		for _, cell := range row {
			fmt.Fprintf(&b, `<td>%s</td>`, esc(cell))
		}
		b.WriteString(`</tr>`)
	}
	b.WriteString(`</tbody></table></div>`)
	r.sections = append(r.sections, b.String())
}

// Render writes the complete HTML document.
func (r *Report) Render(w io.Writer) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">")
	b.WriteString(`<meta name="viewport" content="width=device-width, initial-scale=1">`)
	fmt.Fprintf(&b, `<title>%s</title>`, esc(r.Title))
	b.WriteString("<style>\n" + cssVars() + pageCSS + "</style></head><body>")
	fmt.Fprintf(&b, `<header><h1>%s</h1><p class="prose">%s</p></header><main>`,
		esc(r.Title), esc(r.Subtitle))
	for _, s := range r.sections {
		b.WriteString(s)
		b.WriteByte('\n')
	}
	b.WriteString(`</main><div id="tooltip" hidden></div>`)
	b.WriteString("<script>\n" + hoverJS + "</script></body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// pageCSS is the chart chrome: recessive grid, thin marks, text in ink
// tokens, tiles, legend, and table views. Series colors appear only on
// marks and legend keys, never on text.
var pageCSS = `
* { box-sizing: border-box; }
body {
  margin: 0; background: var(--page); color: var(--ink);
  font: 15px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
header, main { max-width: 860px; margin: 0 auto; padding: 0 20px; }
header { padding-top: 28px; }
h1 { font-size: 24px; margin: 0 0 4px; }
h2 { font-size: 18px; margin: 36px 0 6px; }
.prose { color: var(--ink-2); margin: 4px 0 12px; max-width: 72ch; }
.chart {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 10px; padding: 16px 16px 10px; margin: 14px 0;
}
figure.chart { position: relative; }
figcaption .title { font-weight: 600; display: block; }
figcaption .subtitle { color: var(--ink-2); font-size: 13px; display: block; margin-bottom: 6px; }
svg { width: 100%; height: auto; display: block; outline: none; }
svg text { font: 11px system-ui, sans-serif; fill: var(--muted); }
svg text.tick { font-variant-numeric: tabular-nums; }
svg text.axis-label { fill: var(--ink-2); }
svg text.direct-label { fill: var(--ink-2); font-size: 12px; }
.bar:hover, .bar:focus { filter: brightness(1.08); outline: none; }
.legend { display: flex; flex-wrap: wrap; gap: 14px; margin: 8px 2px 2px; font-size: 13px; color: var(--ink-2); }
.legend .key { display: inline-block; margin-right: 6px; vertical-align: middle; }
.legend .key-line { width: 16px; height: 2px; border-radius: 1px; }
.legend .key-bar { width: 10px; height: 10px; border-radius: 2px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 14px 0; }
.tile {
  background: var(--surface); border: 1px solid var(--border); border-radius: 10px;
  padding: 12px 16px; min-width: ` + fmt.Sprint(tileMin) + `px; flex: 1;
}
.tile-label { font-size: 13px; color: var(--ink-2); }
.tile-value { font-size: 30px; font-weight: 600; margin-top: 2px; }
.tile-note { font-size: 12px; color: var(--muted); margin-top: 2px; }
details.table-view { margin-top: 8px; font-size: 13px; }
details.table-view summary { color: var(--ink-2); cursor: pointer; }
table { border-collapse: collapse; margin-top: 6px; width: 100%; }
th, td {
  text-align: right; padding: 3px 10px; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th:first-child, td:first-child { text-align: left; }
th { color: var(--ink-2); font-weight: 600; }
table.plain { font-size: 14px; }
#tooltip {
  position: fixed; pointer-events: none; z-index: 10;
  background: var(--surface); border: 1px solid var(--border); border-radius: 8px;
  padding: 8px 10px; font-size: 12px; color: var(--ink-2);
  box-shadow: 0 2px 10px rgba(0,0,0,0.12); max-width: 260px;
}
#tooltip .row { display: flex; align-items: center; gap: 6px; white-space: nowrap; }
#tooltip .v { font-weight: 600; color: var(--ink); font-variant-numeric: tabular-nums; }
#tooltip .k { display: inline-block; width: 12px; height: 2px; border-radius: 1px; }
.crosshair { stroke: var(--axis); stroke-width: 1; }
`

// hoverJS is the shared hover layer: a crosshair+tooltip on line
// charts (pointer and arrow keys) and per-mark tooltips on bars.
// Tooltips enhance, never gate — every value is also in the table
// view. All untrusted strings go through textContent.
const hoverJS = `
(function () {
  var tip = document.getElementById('tooltip');
  function showTip(x, y, rows) {
    tip.textContent = '';
    rows.forEach(function (r) {
      var div = document.createElement('div');
      div.className = 'row';
      if (r.color) {
        var k = document.createElement('span');
        k.className = 'k';
        k.style.background = r.color;
        div.appendChild(k);
      }
      var v = document.createElement('span');
      v.className = 'v';
      v.textContent = r.value;
      div.appendChild(v);
      var n = document.createElement('span');
      n.textContent = r.name;
      div.appendChild(n);
      tip.appendChild(div);
    });
    tip.hidden = false;
    var w = tip.offsetWidth, h = tip.offsetHeight;
    var px = Math.min(x + 14, window.innerWidth - w - 8);
    var py = Math.max(8, y - h - 10);
    tip.style.left = px + 'px';
    tip.style.top = py + 'px';
  }
  function hideTip() { tip.hidden = true; }

  function fmt(v) {
    if (Math.abs(v) >= 100) return v.toFixed(0);
    if (Math.abs(v) >= 10) return v.toFixed(1);
    return v.toFixed(2);
  }

  document.querySelectorAll('figure[data-kind="line"]').forEach(function (fig) {
    var svg = fig.querySelector('svg');
    var dataEl = fig.querySelector('.chart-data');
    if (!svg || !dataEl) return;
    var d = JSON.parse(dataEl.textContent);
    var ns = 'http://www.w3.org/2000/svg';
    var cross = document.createElementNS(ns, 'line');
    cross.setAttribute('class', 'crosshair');
    cross.setAttribute('y1', d.py0);
    cross.setAttribute('y2', d.py1);
    cross.style.display = 'none';
    svg.appendChild(cross);
    var vb = svg.viewBox.baseVal;
    var idx = -1;

    function dataX(clientX) {
      var r = svg.getBoundingClientRect();
      var sx = (clientX - r.left) / r.width * vb.width;
      return d.x0 + (sx - d.px0) / (d.px1 - d.px0) * (d.x1 - d.x0);
    }
    function render(xv, clientX, clientY) {
      xv = Math.max(d.x0, Math.min(d.x1, xv));
      var px = d.px0 + (xv - d.x0) / (d.x1 - d.x0) * (d.px1 - d.px0);
      cross.setAttribute('x1', px);
      cross.setAttribute('x2', px);
      cross.style.display = '';
      var rows = [{value: fmt(xv), name: 's'}];
      d.series.forEach(function (s) {
        if (!s.x.length) return;
        var best = 0, bd = Infinity;
        for (var i = 0; i < s.x.length; i++) {
          var dd = Math.abs(s.x[i] - xv);
          if (dd < bd) { bd = dd; best = i; }
        }
        rows.push({value: fmt(s.y[best]), name: s.name, color: s.color});
      });
      showTip(clientX, clientY, rows);
    }
    svg.addEventListener('pointermove', function (ev) {
      render(dataX(ev.clientX), ev.clientX, ev.clientY);
    });
    svg.addEventListener('pointerleave', function () {
      cross.style.display = 'none';
      hideTip();
    });
    // Keyboard: arrows step through the first series' samples.
    svg.addEventListener('keydown', function (ev) {
      var grid = d.series.length ? d.series[0].x : [];
      if (!grid.length) return;
      if (ev.key === 'ArrowRight') idx = Math.min(grid.length - 1, idx + 1);
      else if (ev.key === 'ArrowLeft') idx = Math.max(0, idx - 1);
      else return;
      ev.preventDefault();
      var r = svg.getBoundingClientRect();
      render(grid[idx], r.left + r.width / 2, r.top + 40);
    });
    svg.addEventListener('blur', function () {
      cross.style.display = 'none';
      hideTip();
    });
  });

  document.querySelectorAll('figure[data-kind="bar"] .bar').forEach(function (bar) {
    function show(ev) {
      var r = bar.getBoundingClientRect();
      showTip(ev.clientX || r.left + r.width / 2, ev.clientY || r.top, [
        {value: bar.getAttribute('data-value'), name: bar.getAttribute('data-name')},
        {value: '', name: bar.getAttribute('data-label')}
      ]);
    }
    bar.addEventListener('pointermove', show);
    bar.addEventListener('focus', show);
    bar.addEventListener('pointerleave', hideTip);
    bar.addEventListener('blur', hideTip);
  });
})();
`
