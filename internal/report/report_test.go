package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleLine() *LineChart {
	return &LineChart{
		Title:    "Observed throughput",
		Subtitle: "ANL->UChicago, ext.cmp=16",
		YLabel:   "MB/s",
		XLabel:   "transfer time (s)",
		Series: []LineSeries{
			{Name: "default", X: []float64{0, 30, 60}, Y: []float64{100, 150, 160}},
			{Name: "nm-tuner", X: []float64{0, 30, 60}, Y: []float64{100, 400, 650}},
		},
	}
}

func TestLineChartStructure(t *testing.T) {
	h := sampleLine().HTML()
	for _, want := range []string{
		"<figure", "<svg", "viewBox", "polyline", "chart-data",
		"Table view", "legend", "MB/s", "stroke-width=\"2\"",
	} {
		if !strings.Contains(h, want) {
			t.Errorf("line chart HTML missing %q", want)
		}
	}
	// Legend present for two series; both names appear.
	if !strings.Contains(h, "default") || !strings.Contains(h, "nm-tuner") {
		t.Error("series names missing")
	}
}

func TestSingleSeriesHasNoLegend(t *testing.T) {
	c := sampleLine()
	c.Series = c.Series[:1]
	if strings.Contains(c.HTML(), `class="legend"`) {
		t.Error("single-series chart rendered a legend box")
	}
}

func TestEscaping(t *testing.T) {
	c := sampleLine()
	c.Title = `<script>alert("x")</script>`
	c.Series[0].Name = `<img onerror=1>`
	h := c.HTML()
	if strings.Contains(h, "<script>alert") || strings.Contains(h, "<img onerror") {
		t.Fatal("unescaped untrusted text in output")
	}
	if !strings.Contains(h, "&lt;script&gt;") {
		t.Fatal("title not escaped")
	}
}

func TestBarChartStructure(t *testing.T) {
	c := &BarChart{
		Title:       "Disk regimes",
		YLabel:      "MB/s",
		SeriesNames: []string{"default", "nm-tuner"},
		Groups: []BarGroup{
			{Label: "many-small", Values: []float64{7, 60}},
			{Label: "few-huge", Values: []float64{1762, 1632}},
		},
	}
	h := c.HTML()
	for _, want := range []string{`data-kind="bar"`, `class="bar"`, "tabindex", "Table view", "legend"} {
		if !strings.Contains(h, want) {
			t.Errorf("bar chart HTML missing %q", want)
		}
	}
	// Four bars rendered.
	if got := strings.Count(h, `class="bar"`); got != 4 {
		t.Errorf("rendered %d bars, want 4", got)
	}
}

func TestBarChartEmpty(t *testing.T) {
	if (&BarChart{Title: "x"}).HTML() != "" {
		t.Error("empty bar chart should render nothing")
	}
}

func TestReportRender(t *testing.T) {
	r := New("dstune report", "paper vs measured")
	r.AddHeading("Figure 5", "observed throughput")
	r.AddTiles([]Tile{{Label: "best gain", Value: "8.6x", Note: "paper: 10x"}})
	r.AddLine(sampleLine())
	r.AddTable([]string{"scenario", "factor"}, [][]string{{"cmp16", "4.1x"}})
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "prefers-color-scheme: dark", "--s1:",
		"dstune report", "8.6x", "tooltip", "ArrowRight", "</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Balanced figure tags.
	if strings.Count(out, "<figure") != strings.Count(out, "</figure>") {
		t.Error("unbalanced <figure> tags")
	}
	if strings.Count(out, "<svg") != strings.Count(out, "</svg>") {
		t.Error("unbalanced <svg> tags")
	}
}

func TestNiceTicks(t *testing.T) {
	cases := []struct {
		max  float64
		last float64
		n    int
	}{
		{9, 10, 6},
		{4300, 5000, 6},
		{0.7, 0.8, 5},
		{100, 100, 5},
	}
	for _, c := range cases {
		ticks := niceTicks(0, c.max)
		if len(ticks) < 3 || len(ticks) > 7 {
			t.Errorf("niceTicks(0, %v) = %v: bad count", c.max, ticks)
		}
		if ticks[0] != 0 {
			t.Errorf("niceTicks(0, %v) starts at %v, want 0", c.max, ticks[0])
		}
		if last := ticks[len(ticks)-1]; last < c.max {
			t.Errorf("niceTicks(0, %v) tops at %v, below max", c.max, last)
		}
	}
}

func TestNiceTicksProperty(t *testing.T) {
	f := func(raw uint32) bool {
		max := float64(raw%1000000) + 0.5
		ticks := niceTicks(0, max)
		if len(ticks) < 2 {
			return false
		}
		// Monotone and covering.
		for i := 1; i < len(ticks); i++ {
			if ticks[i] <= ticks[i-1] {
				return false
			}
		}
		return ticks[len(ticks)-1] >= max && ticks[0] == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScale(t *testing.T) {
	if got := scale(5, 0, 10, 100, 200); got != 150 {
		t.Fatalf("scale = %v", got)
	}
	// Inverted range (screen y).
	if got := scale(0, 0, 10, 200, 100); got != 200 {
		t.Fatalf("scale inverted = %v", got)
	}
	// Degenerate domain.
	if got := scale(3, 7, 7, 0, 100); got != 50 {
		t.Fatalf("degenerate scale = %v", got)
	}
}

func TestAssignSlotsFixedEntities(t *testing.T) {
	slots := assignSlots([]string{"nm-tuner", "default", "mystery"})
	if slots[0] != 3 { // nm-tuner is always slot 4 (index 3)
		t.Errorf("nm-tuner slot = %d, want 3", slots[0])
	}
	if slots[1] != 0 {
		t.Errorf("default slot = %d, want 0", slots[1])
	}
	// Unknown name takes a free slot, not a duplicate.
	if slots[2] == slots[0] || slots[2] == slots[1] {
		t.Errorf("mystery reused a taken slot: %v", slots)
	}
}

func TestAssignSlotsStableAcrossFilters(t *testing.T) {
	// Removing a series must not repaint the survivors.
	full := assignSlots([]string{"default", "cd-tuner", "cs-tuner", "nm-tuner"})
	filtered := assignSlots([]string{"default", "nm-tuner"})
	if full[0] != filtered[0] || full[3] != filtered[1] {
		t.Errorf("colors changed when series were filtered: %v vs %v", full, filtered)
	}
}

func TestCollide(t *testing.T) {
	if collide([]endInfo{{y: 10}, {y: 40}}) {
		t.Error("separated labels flagged as colliding")
	}
	if !collide([]endInfo{{y: 10}, {y: 15}}) {
		t.Error("overlapping labels not flagged")
	}
}

func TestNearestY(t *testing.T) {
	s := LineSeries{X: []float64{0, 30, 60}, Y: []float64{1, 2, 3}}
	if v, ok := nearestY(s, 31); !ok || v != 2 {
		t.Fatalf("nearestY(31) = %v, %v", v, ok)
	}
	if _, ok := nearestY(s, 500); ok {
		t.Fatal("far x should not match")
	}
	if _, ok := nearestY(LineSeries{}, 0); ok {
		t.Fatal("empty series matched")
	}
}

func TestCompact(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		500:     "500",
		12000:   "12.0k",
		2500000: "2.50M",
	}
	for in, want := range cases {
		if got := compact(in); got != want {
			t.Errorf("compact(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRoundTopBarSmallHeights(t *testing.T) {
	// Tiny bars must not produce negative radii / NaN paths.
	var svg svgBuilder
	svg.roundTopBar(10, 95, 20, 2, "var(--s1)", "")
	out := svg.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "-") && strings.Contains(out, "Q-") {
		t.Fatalf("bad path: %s", out)
	}
}

func TestFnumFinite(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 99.9, 1234.5, 0.001} {
		if fnum(v) == "" || math.IsNaN(v) {
			t.Fatalf("fnum(%v) empty", v)
		}
	}
}
