package xfer

import (
	"context"
	"fmt"
	"math"
	"sync"

	"dstune/internal/dataset"
	"dstune/internal/endpoint"
	"dstune/internal/load"
	"dstune/internal/netem"
	"dstune/internal/sim"
	"dstune/internal/tcpmodel"
)

// FabricConfig configures a simulation fabric.
type FabricConfig struct {
	// DT is the simulation step in virtual seconds; zero selects
	// sim.DefaultDT. Network paths internally sub-step at RTT
	// resolution.
	DT float64
	// Seed drives all randomness in the fabric.
	Seed uint64
	// Source configures the source endpoint shared by all transfers.
	Source endpoint.Config
	// TCP selects the congestion-control algorithm for every stream;
	// nil selects H-TCP, the algorithm on the paper's endpoints.
	TCP tcpmodel.Algorithm
}

// Fabric is a simulated testbed: one source endpoint, one or more
// network paths, external load, and any number of transfers. Virtual
// time advances only when every active transfer has an outstanding Run
// call, so concurrently tuned transfers (the paper's §IV-D) stay in
// lockstep and results are deterministic.
type Fabric struct {
	mu   sync.Mutex
	cond *sync.Cond

	cfg   FabricConfig
	clock *sim.Clock
	rng   *sim.RNG
	src   *endpoint.Host
	alg   tcpmodel.Algorithm

	paths     []*netem.Path
	transfers []*Sim

	extSched load.Schedule
	extPath  *netem.Path
	extFlows []*netem.Flow // ext.tfr: source-originated, CPU-scheduled
	netFlows []*netem.Flow // third-party: network only
	curLoad  load.Load
}

// NewFabric returns a fabric with the given source endpoint and no
// paths; add at least one with AddPath before creating transfers.
func NewFabric(cfg FabricConfig) (*Fabric, error) {
	if err := cfg.Source.Validate(); err != nil {
		return nil, err
	}
	if cfg.TCP == nil {
		cfg.TCP = tcpmodel.NewHTCP()
	}
	f := &Fabric{
		cfg:      cfg,
		clock:    sim.NewClock(cfg.DT),
		rng:      sim.NewRNG(cfg.Seed),
		src:      endpoint.New(cfg.Source),
		alg:      cfg.TCP,
		extSched: load.None(),
	}
	f.cond = sync.NewCond(&f.mu)
	return f, nil
}

// AddPath attaches a network path to the fabric and returns it.
func (f *Fabric) AddPath(cfg netem.Config) (*netem.Path, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	p := netem.New(cfg, f.rng.Split())
	f.paths = append(f.paths, p)
	if f.extPath == nil {
		f.extPath = p
	}
	return p, nil
}

// SetLoad installs the external-load schedule. The compute component
// applies to the source endpoint; the transfer-traffic component runs
// on path p (nil selects the first path). Call before transfers start.
func (f *Fabric) SetLoad(s load.Schedule, p *netem.Path) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s == nil {
		s = load.None()
	}
	f.extSched = s
	if p != nil {
		f.extPath = p
	}
}

// Source returns the fabric's source endpoint.
func (f *Fabric) Source() *endpoint.Host { return f.src }

// Now returns the fabric's virtual time in seconds.
func (f *Fabric) Now() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.clock.Now()
}

// TransferConfig describes one transfer on a fabric.
type TransferConfig struct {
	// Name labels the transfer in diagnostics.
	Name string
	// Path is the network path to transfer over; nil selects the
	// fabric's first path.
	Path *netem.Path
	// Bytes is the data size; use math.Inf(1) (or Unbounded) for the
	// paper's fixed-duration memory-to-memory runs. Ignored when
	// Files is non-empty.
	Bytes float64
	// Policy selects the restart behaviour; the zero value is
	// RestartEveryEpoch, matching the paper's tuners.
	Policy RestartPolicy
	// Files selects disk-to-disk mode: the set of files to move.
	// Each concurrency unit moves one file at a time; the pipelining
	// parameter amortizes the per-file request latency.
	Files dataset.Dataset
	// DiskRate is the source storage array's aggregate bandwidth in
	// bytes per second, shared by the transfer's processes; zero
	// means storage is not the bottleneck.
	DiskRate float64
	// FileOverhead is the per-file request-and-seek latency in
	// seconds (control-channel round trip plus metadata access);
	// zero selects 0.1 s when Files is set.
	FileOverhead float64
}

// Unbounded is a convenience size for transfers that run until the
// driver stops them.
var Unbounded = math.Inf(1)

// Sim is a simulated transfer on a Fabric. It implements Transferer.
// Create with Fabric.NewTransfer; each Sim must then either Run until
// done or be Stopped — an idle registered transfer blocks virtual
// time for the whole fabric.
type Sim struct {
	f      *Fabric
	name   string
	path   *netem.Path
	policy RestartPolicy

	total     float64 // configured volume (Inf for unbounded)
	remaining float64
	moved     float64 // cumulative delivered bytes
	params    Params
	flows     []*netem.Flow
	prevFlow  []float64  // per-flow cumulative bytes already accounted
	disk      *diskState // nil for memory-to-memory transfers

	target    float64 // absolute virtual time this transfer wants to reach
	deadUntil float64 // restarting until this virtual time
	started   bool    // first Run seen
	startTime float64 // virtual time of first Run
	done      bool
	stopped   bool

	epochBytes float64
	epochDead  float64
}

// NewTransfer registers a transfer on the fabric. All transfers that
// will run concurrently must be registered before any of them starts
// running, so that virtual time cannot race ahead of a late joiner.
func (f *Fabric) NewTransfer(cfg TransferConfig) (*Sim, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.paths) == 0 {
		return nil, fmt.Errorf("xfer: fabric has no paths")
	}
	p := cfg.Path
	if p == nil {
		p = f.paths[0]
	}
	tr := &Sim{
		f:         f,
		name:      cfg.Name,
		path:      p,
		policy:    cfg.Policy,
		remaining: cfg.Bytes,
		target:    f.clock.Now(), // blocks stepping until Run or Stop
	}
	if cfg.Files.Count() > 0 {
		overhead := cfg.FileOverhead
		if overhead == 0 {
			overhead = 0.1
		}
		if overhead < 0 {
			overhead = 0
		}
		tr.disk = newDiskState(cfg.Files, cfg.DiskRate, overhead)
		tr.remaining = float64(cfg.Files.TotalBytes())
	} else if cfg.Bytes <= 0 {
		return nil, fmt.Errorf("xfer: transfer size must be positive, got %v", cfg.Bytes)
	}
	tr.total = tr.remaining
	f.transfers = append(f.transfers, tr)
	return tr, nil
}

// Name returns the transfer's label.
func (t *Sim) Name() string { return t.name }

// Params returns the parameters of the currently running processes.
func (t *Sim) Params() Params { return t.params }

// Remaining implements Transferer.
func (t *Sim) Remaining() float64 {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	if t.remaining < 0 {
		return 0
	}
	return t.remaining
}

// Now implements Transferer. It returns seconds since the transfer's
// first Run (zero before that).
func (t *Sim) Now() float64 {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	if !t.started {
		return 0
	}
	return t.f.clock.Now() - t.startTime
}

// Stop implements Transferer.
func (t *Sim) Stop() {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	t.stopped = true
	t.teardownLocked()
	t.f.cond.Broadcast()
}

// Snapshot implements Snapshotter.
func (t *Sim) Snapshot() TransferState {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	clock := 0.0
	if t.started {
		clock = t.f.clock.Now() - t.startTime
	}
	rem := t.remaining
	if rem < 0 {
		rem = 0
	}
	return TransferState{
		Total:     Finite(t.total),
		Acked:     t.moved,
		Remaining: Finite(rem),
		Clock:     clock,
	}
}

// Run implements Transferer. Cancelling ctx ends the epoch at the
// current virtual time: the partial epoch's report is returned with
// the context's error, and the transfer stays registered and
// resumable (unlike Stop, which tears it down).
func (t *Sim) Run(ctx context.Context, p Params, epoch float64) (Report, error) {
	f := t.f
	f.mu.Lock()
	defer f.mu.Unlock()

	if t.stopped {
		return Report{}, ErrStopped
	}
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	if epoch <= 0 {
		return Report{}, ErrBadEpoch
	}
	if !p.Valid() {
		return Report{}, ErrBadParams
	}
	// A cancelled ctx must wake the barrier wait below; the watcher
	// exits when Run returns. Skip it for non-cancellable contexts so
	// the hot simulation path stays goroutine-free.
	if ctx.Done() != nil {
		unwatched := make(chan struct{})
		defer close(unwatched)
		go func() {
			select {
			case <-ctx.Done():
				f.mu.Lock()
				f.cond.Broadcast()
				f.mu.Unlock()
			case <-unwatched:
			}
		}()
	}
	now := f.clock.Now()
	if !t.started {
		t.started = true
		t.startTime = now
	}
	if t.done {
		return Report{Params: p, Start: now - t.startTime, End: now - t.startTime, Done: true}, nil
	}

	t.epochBytes = 0
	t.epochDead = 0
	if t.disk != nil {
		t.disk.epochFiles = 0
	}
	restart := t.flows == nil || t.policy == RestartEveryEpoch ||
		(t.policy == RestartOnChange && p != t.params)
	t.params = p
	if restart {
		t.restartLocked(now)
	}

	start := now
	t.target = start + epoch
	f.cond.Broadcast()
	for f.clock.Now() < t.target-1e-9 && !t.done && !t.stopped && ctx.Err() == nil {
		if f.canStepLocked() {
			f.stepLocked()
			f.cond.Broadcast()
		} else {
			f.cond.Wait()
		}
	}
	if t.stopped {
		return Report{}, ErrStopped
	}
	end := f.clock.Now()
	t.target = end // release the barrier for others while idle between epochs

	elapsed := end - start
	r := Report{
		Params:   p,
		Start:    start - t.startTime,
		End:      end - t.startTime,
		Bytes:    t.epochBytes,
		DeadTime: t.epochDead,
		Done:     t.done,
	}
	if t.disk != nil {
		r.Files = t.disk.epochFiles
	}
	if elapsed > 0 {
		r.Throughput = r.Bytes / elapsed
	}
	if live := elapsed - r.DeadTime; live > 0 {
		r.BestCase = r.Bytes / live
	}
	f.cond.Broadcast()
	return r, ctx.Err()
}

// restartLocked tears down the transfer's processes and schedules new
// ones after the endpoint's restart dead time. For a disk transfer,
// files in flight go back to the head of the queue (the restarted
// processes re-request them).
func (t *Sim) restartLocked(now float64) {
	for _, fl := range t.flows {
		fl.Remove()
	}
	t.flows = nil
	t.prevFlow = nil
	if t.disk != nil {
		t.disk.requeueInFlight()
	}
	procs := t.f.totalProcsLocked() + t.params.NC
	t.deadUntil = now + t.f.src.RestartTime(procs)
}

// teardownLocked removes the transfer's flows and releases the time
// barrier.
func (t *Sim) teardownLocked() {
	for _, fl := range t.flows {
		fl.Remove()
	}
	t.flows = nil
	t.target = math.Inf(1)
}

// launchLocked creates the transfer's nc flows of np streams each.
func (t *Sim) launchLocked() {
	t.flows = make([]*netem.Flow, t.params.NC)
	for i := range t.flows {
		t.flows[i] = t.path.NewFlow(t.params.NP, t.f.alg)
	}
	t.prevFlow = make([]float64, t.params.NC)
	if t.disk != nil {
		t.disk.resize(t.params.NC)
	}
}

// totalProcsLocked counts transfer processes currently running on the
// source: all transfers' concurrency plus external transfer flows.
func (f *Fabric) totalProcsLocked() int {
	n := len(f.extFlows)
	for _, tr := range f.transfers {
		n += len(tr.flows)
	}
	return n
}

// canStepLocked reports whether every registered, unfinished transfer
// has asked for time beyond the clock — the conservative-time barrier.
func (f *Fabric) canStepLocked() bool {
	now := f.clock.Now()
	for _, tr := range f.transfers {
		if tr.done || tr.stopped {
			continue
		}
		if tr.target <= now+1e-9 {
			return false
		}
	}
	return true
}

// stepLocked advances the world by one clock step: external load,
// process launches, CPU scheduling, network dynamics, and per-transfer
// byte accounting.
func (f *Fabric) stepLocked() {
	now := f.clock.Now()
	dt := f.clock.DT()

	// External load.
	l := f.extSched.At(now)
	if l != f.curLoad {
		f.applyLoadLocked(l)
	}

	// Launch transfers whose restart dead time has elapsed.
	for _, tr := range f.transfers {
		if tr.done || tr.stopped || tr.flows != nil {
			continue
		}
		if tr.started && now >= tr.deadUntil-1e-9 {
			tr.launchLocked()
		}
	}

	// Disk pre-phase: hand files to idle processes and count active
	// movers, so the scheduling round below can block waiting
	// processes and share the storage bandwidth.
	for _, tr := range f.transfers {
		if tr.disk != nil && tr.flows != nil && !tr.done && !tr.stopped {
			tr.disk.assign(now, tr.params.Pipelining())
		}
	}

	// CPU scheduling: one allocation round over every process on the
	// source (all transfers' processes plus external transfer
	// processes). Demands use the window-limited offered rate with
	// headroom so flows can grow into idle capacity.
	const headroom = 2.0
	const demandFloor = 10e6 // bytes/s; lets fresh processes ramp
	type procRef struct {
		tr  *Sim // nil for external flows
		idx int
		fl  *netem.Flow
	}
	var demands []endpoint.Demand
	var refs []procRef
	for _, tr := range f.transfers {
		for i, fl := range tr.flows {
			demands = append(demands, endpoint.Demand{
				Threads: fl.Streams(),
				Rate:    fl.OfferedRate()*headroom + demandFloor,
			})
			refs = append(refs, procRef{tr: tr, idx: i, fl: fl})
		}
	}
	for _, fl := range f.extFlows {
		demands = append(demands, endpoint.Demand{
			Threads: fl.Streams(),
			Rate:    fl.OfferedRate()*headroom + demandFloor,
		})
		refs = append(refs, procRef{fl: fl})
	}
	if len(refs) > 0 {
		caps := f.src.Allocate(demands)
		for i, ref := range refs {
			c := caps[i]
			if ref.tr != nil && ref.tr.disk != nil {
				c = ref.tr.disk.capFor(ref.idx, now, c)
			}
			if c <= 0 {
				c = -1 // starved or waiting: fully blocked
			}
			ref.fl.SetCap(c)
		}
	}

	// Network dynamics.
	for _, p := range f.paths {
		p.Step(dt)
	}

	// Per-transfer accounting.
	for _, tr := range f.transfers {
		if tr.done || tr.stopped {
			continue
		}
		if tr.flows == nil {
			if tr.started {
				tr.epochDead += dt
			}
			continue
		}
		var moved float64
		for i, fl := range tr.flows {
			delta := fl.Delivered() - tr.prevFlow[i]
			tr.prevFlow[i] = fl.Delivered()
			if tr.disk != nil {
				moved += tr.disk.consume(i, delta)
			} else {
				moved += delta
			}
		}
		if moved > tr.remaining {
			moved = tr.remaining
		}
		tr.epochBytes += moved
		tr.moved += moved
		tr.remaining -= moved
		finished := tr.remaining <= 0
		if tr.disk != nil {
			finished = tr.disk.finished()
		}
		if finished {
			tr.remaining = 0
			tr.done = true
			tr.teardownLocked()
		}
	}

	f.clock.Tick()
}

// applyLoadLocked adjusts the external compute jobs and transfer flows
// to match l.
func (f *Fabric) applyLoadLocked(l load.Load) {
	f.curLoad = l
	f.src.SetComputeJobs(l.Cmp)
	// External transfer traffic: one single-stream process per
	// ext.tfr unit, as in the paper's controlled experiments.
	for len(f.extFlows) > l.Tfr {
		last := len(f.extFlows) - 1
		f.extFlows[last].Remove()
		f.extFlows = f.extFlows[:last]
	}
	for len(f.extFlows) < l.Tfr {
		f.extFlows = append(f.extFlows, f.extPath.NewFlow(1, f.alg))
	}
	// Third-party traffic crosses the path but not the source host:
	// its flows never enter the CPU scheduling round.
	for len(f.netFlows) > l.Net {
		last := len(f.netFlows) - 1
		f.netFlows[last].Remove()
		f.netFlows = f.netFlows[:last]
	}
	for len(f.netFlows) < l.Net {
		f.netFlows = append(f.netFlows, f.extPath.NewFlow(1, f.alg))
	}
}
