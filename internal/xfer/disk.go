package xfer

import "dstune/internal/dataset"

// diskState is the disk-to-disk bookkeeping of a Sim transfer: a queue
// of files, the file each process is currently moving, and the
// per-file request latency that the pipelining parameter amortizes
// (the paper's future-work item (1), following Yildirim et al. [25]).
type diskState struct {
	queue     []fileRem // files not yet started, in order
	cur       []fileRem // per-process current file; rem <= 0 means idle
	busyUntil []float64 // per-process: requesting/seeking until this time
	diskRate  float64   // source storage bandwidth shared by the processes
	overhead  float64   // per-file request+seek latency in seconds

	filesDone  int
	epochFiles int
	active     int // processes moving a file this step
}

// fileRem is a file with its remaining bytes.
type fileRem struct {
	name string
	rem  float64
}

// newDiskState builds the state for a dataset.
func newDiskState(d dataset.Dataset, diskRate, overhead float64) *diskState {
	ds := &diskState{
		queue:    make([]fileRem, 0, d.Count()),
		diskRate: diskRate,
		overhead: overhead,
	}
	for _, f := range d.Files {
		if f.Size <= 0 {
			ds.filesDone++ // empty files complete immediately
			continue
		}
		ds.queue = append(ds.queue, fileRem{name: f.Name, rem: float64(f.Size)})
	}
	return ds
}

// resize prepares per-process state for nc freshly launched processes.
func (d *diskState) resize(nc int) {
	d.cur = make([]fileRem, nc)
	d.busyUntil = make([]float64, nc)
}

// requeueInFlight returns all in-flight files to the head of the
// queue; the restarted processes will re-request them.
func (d *diskState) requeueInFlight() {
	var back []fileRem
	for _, c := range d.cur {
		if c.rem > 0 {
			back = append(back, c)
		}
	}
	d.queue = append(back, d.queue...)
	d.cur = nil
	d.busyUntil = nil
}

// assign hands files to idle processes, charging each new file the
// request latency amortized by the pipelining depth, and counts the
// processes actively moving data this step.
func (d *diskState) assign(now float64, pp int) {
	if pp < 1 {
		pp = 1
	}
	d.active = 0
	for i := range d.cur {
		if d.cur[i].rem <= 0 && len(d.queue) > 0 {
			d.cur[i] = d.queue[0]
			d.queue = d.queue[1:]
			d.busyUntil[i] = now + d.overhead/float64(pp)
		}
		if d.cur[i].rem > 0 && now >= d.busyUntil[i] {
			d.active++
		}
	}
}

// capFor combines the CPU cap with the storage share for process i:
// blocked (-1) while requesting or idle, otherwise the minimum of the
// CPU cap and an equal share of the disk bandwidth.
func (d *diskState) capFor(i int, now, cpuCap float64) float64 {
	if i >= len(d.cur) || d.cur[i].rem <= 0 || now < d.busyUntil[i] {
		return -1
	}
	c := cpuCap
	if d.diskRate > 0 && d.active > 0 {
		share := d.diskRate / float64(d.active)
		if share < c {
			c = share
		}
	}
	return c
}

// consume applies delta delivered bytes to process i's current file
// and returns the bytes actually consumed (excess beyond the file's
// remainder is a pipeline bubble and is discarded).
func (d *diskState) consume(i int, delta float64) float64 {
	if i >= len(d.cur) || d.cur[i].rem <= 0 || delta <= 0 {
		return 0
	}
	c := delta
	if c > d.cur[i].rem {
		c = d.cur[i].rem
	}
	d.cur[i].rem -= c
	if d.cur[i].rem <= 1e-6 {
		d.cur[i] = fileRem{}
		d.filesDone++
		d.epochFiles++
	}
	return c
}

// finished reports whether every file has completed.
func (d *diskState) finished() bool {
	if len(d.queue) > 0 {
		return false
	}
	for _, c := range d.cur {
		if c.rem > 0 {
			return false
		}
	}
	return true
}
