// Package xfer defines the transfer abstraction the tuners drive — run
// the transfer with given parameters for one control epoch and report
// the observed throughput — and provides Sim, an implementation backed
// by the endpoint and network simulators.
//
// A transfer is parameterized the way Globus GridFTP is: concurrency
// (nc) counts transfer processes and parallelism (np) counts TCP
// streams per process, for nc*np parallel streams total. Following the
// paper, tuned transfers restart their processes at every control
// epoch (the source of the 15–50% overhead the paper measures), while
// the Report separately accounts a best-case throughput that excludes
// the restart dead time — Figure 7's metric.
package xfer

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Params are the tunable transfer parameters.
type Params struct {
	// NC is the concurrency: the number of transfer processes. For
	// disk-to-disk transfers it is also the number of files in
	// flight.
	NC int
	// NP is the parallelism: the number of TCP streams per process.
	NP int
	// PP is the pipelining depth for disk-to-disk transfers: how
	// many file requests are batched on a control channel, which
	// amortizes the per-file request latency. Zero means pipelining
	// does not apply (memory-to-memory transfers) and is treated as
	// 1 where a depth is needed.
	PP int
}

// Streams returns the total number of parallel TCP streams, nc*np.
func (p Params) Streams() int { return p.NC * p.NP }

// Pipelining returns the effective pipelining depth (at least 1).
func (p Params) Pipelining() int {
	if p.PP < 1 {
		return 1
	}
	return p.PP
}

// Valid reports whether the parameters are usable: concurrency and
// parallelism at least 1, pipelining non-negative.
func (p Params) Valid() bool { return p.NC >= 1 && p.NP >= 1 && p.PP >= 0 }

// String implements fmt.Stringer.
func (p Params) String() string {
	if p.PP > 0 {
		return fmt.Sprintf("nc=%d np=%d pp=%d", p.NC, p.NP, p.PP)
	}
	return fmt.Sprintf("nc=%d np=%d", p.NC, p.NP)
}

// Default returns the Globus transfer service's default setting for
// large files: concurrency 2, parallelism 8.
func Default() Params { return Params{NC: 2, NP: 8} }

// DefaultDisk returns a typical static setting for disk-to-disk
// transfers of many files: concurrency 2, parallelism 8, pipelining
// depth 4.
func DefaultDisk() Params { return Params{NC: 2, NP: 8, PP: 4} }

// Report describes one control epoch of a transfer.
type Report struct {
	// Params are the parameters the epoch ran with.
	Params Params
	// Start and End are the epoch's bounds in seconds of transfer
	// time.
	Start, End float64
	// Bytes is the volume moved during the epoch.
	Bytes float64
	// DeadTime is the portion of the epoch lost to process restart.
	DeadTime float64
	// Throughput is the observed rate including all overheads:
	// Bytes / (End - Start). This is what the tuners optimize.
	Throughput float64
	// BestCase is the rate excluding restart dead time:
	// Bytes / (End - Start - DeadTime). It equals Throughput for a
	// transfer that did not restart.
	BestCase float64
	// Files counts the files completed during the epoch (disk-to-disk
	// transfers only; zero for memory-to-memory).
	Files int
	// DegradedStreams counts planned data connections that could not
	// be established after retries, so the epoch ran with
	// Params.Streams()-DegradedStreams streams (real-socket transfers
	// only; zero means the full stripe width ran).
	DegradedStreams int
	// Retries counts the connection attempts beyond the first that the
	// epoch needed (real-socket transfers only).
	Retries int
	// Dials counts the network dials the epoch performed, successful or
	// not, across both control and data connections — the cold fraction
	// of the epoch's setup. A warm steady-state epoch over a persistent
	// stripe pool performs zero (real-socket transfers only; omitted
	// from serialized reports when zero).
	Dials int `json:",omitempty"`
	// ReusedStreams counts data connections reused from the warm stripe
	// pool rather than dialed this epoch (real-socket transfers only;
	// omitted from serialized reports when zero).
	ReusedStreams int `json:",omitempty"`
	// FirstByteLag is the delay in seconds between the epoch's start
	// and its first payload byte hitting a data connection — the
	// per-file handshake latency the pipelining depth hides (dataset
	// transfers only; omitted from serialized reports when zero).
	FirstByteLag float64 `json:",omitempty"`
	// Run is the 1-based sequence number of the Run call that produced
	// this report within the transferer's current session — a restart
	// diagnostic for real-socket transfers; zero when unreported.
	Run int
	// Syscalls counts the client-side I/O calls (write, writev,
	// sendfile, pread) the epoch's file-plane pump issued — the
	// syscall-discipline signal the zero-copy benchmarks gate.
	// Real-socket dataset transfers only; omitted when zero.
	Syscalls int64 `json:",omitempty"`
	// Kernel carries the per-stripe kernel TCP state sampled at the
	// epoch boundary, when the transferer supports it (real-socket
	// transfers with TCP_INFO sampling enabled); nil otherwise —
	// always nil on Sim, so simulated traces are unchanged.
	Kernel *KernelStats `json:",omitempty"`
	// Done reports that the transfer completed during this epoch.
	Done bool
}

// StripeKernel is one data connection's kernel TCP state at an epoch
// boundary, as reported by getsockopt(TCP_INFO).
type StripeKernel struct {
	// RTT is the kernel's smoothed round-trip estimate, in seconds.
	RTT float64 `json:"rtt"`
	// RTTVar is the RTT variance estimate, in seconds.
	RTTVar float64 `json:"rttvar,omitempty"`
	// Cwnd is the congestion window, in segments.
	Cwnd int `json:"cwnd"`
	// DeliveryRate is the kernel's goodput estimate in bytes/second
	// (zero when the kernel does not report one).
	DeliveryRate float64 `json:"delivery_rate,omitempty"`
	// Retrans is the stripe's cumulative retransmitted-segment count
	// over the connection's lifetime.
	Retrans int64 `json:"retrans,omitempty"`
}

// KernelStats aggregates the stripe kernel samples of one epoch. It
// is the signal that lets a strategy distinguish a lossy link (rising
// retransmits) from a slow endpoint when throughput dips.
type KernelStats struct {
	// Stripes holds one sample per surviving data connection, in
	// stripe order.
	Stripes []StripeKernel `json:"stripes"`
	// RetransDelta is the epoch-over-epoch growth of the summed
	// retransmit counters across the stripe (clamped at zero when
	// stripes were evicted or redialed between samples).
	RetransDelta int64 `json:"retrans_delta"`
}

// MeanRTT returns the mean smoothed RTT across the sampled stripes in
// seconds, or zero with no samples.
func (k *KernelStats) MeanRTT() float64 {
	if k == nil || len(k.Stripes) == 0 {
		return 0
	}
	var sum float64
	for _, s := range k.Stripes {
		sum += s.RTT
	}
	return sum / float64(len(k.Stripes))
}

// Transferer runs a transfer one control epoch at a time. It is the
// black box the direct-search tuners optimize: implementations exist
// over the simulator (Sim) and over real sockets
// (internal/gridftp.Client).
type Transferer interface {
	// Run transfers data with parameters p for epoch seconds (less if
	// the transfer completes) and returns the epoch's report.
	//
	// Cancelling ctx aborts the epoch promptly — including any retry
	// backoff or failed-epoch pacing an implementation performs — and
	// Run returns the partial epoch's report (byte accounting already
	// settled as far as the implementation can) together with the
	// context's error. A cancelled transfer is not stopped: the caller
	// may checkpoint its state and resume it later.
	Run(ctx context.Context, p Params, epoch float64) (Report, error)
	// Remaining returns the bytes left to transfer.
	Remaining() float64
	// Now returns the transfer clock in seconds since the start.
	Now() float64
	// Stop abandons the transfer, releasing its resources. Stopping a
	// completed transfer is a no-op. After Stop, Run returns an
	// error. Stop aborts an in-flight Run promptly.
	Stop()
}

// TransferState is the durable state of a transfer, captured for
// checkpointing. Byte totals use -1 for unbounded transfers so the
// state serializes as plain JSON.
type TransferState struct {
	// Total is the transfer's configured volume in bytes; -1 when
	// unbounded.
	Total float64 `json:"total_bytes"`
	// Acked is the receiver-confirmed volume in bytes: what the far
	// end has counted, not what sits in socket buffers. Simulated
	// transfers report delivered bytes.
	Acked float64 `json:"acked_bytes"`
	// Remaining is the sender's account of the bytes left; -1 when
	// unbounded.
	Remaining float64 `json:"remaining_bytes"`
	// Clock is the transfer clock in seconds (cumulative across
	// resumed sessions).
	Clock float64 `json:"clock_seconds"`
	// Token identifies the transfer on the far end, when the transport
	// has one (real-socket transfers).
	Token string `json:"token,omitempty"`
}

// Snapshotter is implemented by transferers whose durable state can be
// captured mid-transfer for checkpoint/resume.
type Snapshotter interface {
	// Snapshot returns the transfer's current durable state.
	Snapshot() TransferState
}

// Finite maps +Inf to the -1 "unbounded" sentinel used by
// TransferState; finite values pass through.
func Finite(v float64) float64 {
	if math.IsInf(v, 1) {
		return -1
	}
	return v
}

// CaptureState snapshots t: its own Snapshot when it implements
// Snapshotter, otherwise the clock and remaining volume alone.
func CaptureState(t Transferer) TransferState {
	if s, ok := t.(Snapshotter); ok {
		return s.Snapshot()
	}
	return TransferState{
		Total:     -1,
		Acked:     0,
		Remaining: Finite(t.Remaining()),
		Clock:     t.Now(),
	}
}

// ErrTransient marks a transfer error as transient: the epoch failed
// for a reason that may clear on its own (dial timeout, connection
// reset, a partially failed stripe), so the caller may retry or record
// a zero-throughput epoch and keep tuning. Fatal errors — protocol
// violations, bad parameters, a stopped transfer — do not carry this
// mark. Test with IsTransient.
var ErrTransient = errors.New("xfer: transient transfer error")

// transientError wraps an error so that it matches both ErrTransient
// and the original cause.
type transientError struct{ err error }

func (e transientError) Error() string   { return e.err.Error() }
func (e transientError) Unwrap() []error { return []error{ErrTransient, e.err} }

// Transient marks err as transient. It returns nil for nil and leaves
// already-transient errors unchanged.
func Transient(err error) error {
	if err == nil || errors.Is(err, ErrTransient) {
		return err
	}
	return transientError{err}
}

// IsTransient reports whether err is marked transient.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// ErrStopped is returned by Run after Stop has been called.
var ErrStopped = errors.New("xfer: transfer stopped")

// ErrBadEpoch is returned by Run for a non-positive epoch length.
var ErrBadEpoch = errors.New("xfer: epoch must be positive")

// ErrBadParams is returned by Run for parameters with nc or np < 1.
var ErrBadParams = errors.New("xfer: params must have nc >= 1 and np >= 1")

// RestartPolicy controls when a Sim transfer pays process-restart dead
// time.
type RestartPolicy int

const (
	// RestartEveryEpoch restarts the transfer's processes on every
	// Run call, as the paper's Python tuners do with globus-url-copy.
	RestartEveryEpoch RestartPolicy = iota
	// RestartOnChange restarts only when the parameters change — the
	// "ideal scenario" of the paper's overhead discussion and its
	// future-work item (2). The paper's `default` baseline behaves
	// this way because it never changes parameters.
	RestartOnChange
)

// String implements fmt.Stringer.
func (p RestartPolicy) String() string {
	switch p {
	case RestartEveryEpoch:
		return "restart-every-epoch"
	case RestartOnChange:
		return "restart-on-change"
	}
	return fmt.Sprintf("RestartPolicy(%d)", int(p))
}
