package xfer

import (
	"context"
	"testing"

	"dstune/internal/dataset"
)

// diskTransfer builds a disk-to-disk transfer on the standard test
// fabric.
func diskTransfer(t *testing.T, seed uint64, d dataset.Dataset, diskRate, overhead float64) *Sim {
	t.Helper()
	f, _ := testFabric(t, seed)
	tr, err := f.NewTransfer(TransferConfig{
		Name:         "disk",
		Files:        d,
		DiskRate:     diskRate,
		FileOverhead: overhead,
		Policy:       RestartOnChange,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDiskTransferCompletes(t *testing.T) {
	d := dataset.Uniform(20, 50<<20) // 20 x 50 MB = 1 GB
	tr := diskTransfer(t, 1, d, 0, 0.05)
	if tr.Remaining() != float64(d.TotalBytes()) {
		t.Fatalf("Remaining = %v, want %v", tr.Remaining(), d.TotalBytes())
	}
	var bytes float64
	files := 0
	for i := 0; i < 100; i++ {
		r, err := tr.Run(context.Background(), Params{NC: 4, NP: 4, PP: 4}, 5)
		if err != nil {
			t.Fatal(err)
		}
		bytes += r.Bytes
		files += r.Files
		if r.Done {
			if files != 20 {
				t.Fatalf("completed %d files, want 20", files)
			}
			if diff := bytes - float64(d.TotalBytes()); diff > 1 || diff < -1 {
				t.Fatalf("moved %v bytes, want %v", bytes, d.TotalBytes())
			}
			if tr.Remaining() != 0 {
				t.Fatalf("Remaining = %v after done", tr.Remaining())
			}
			return
		}
	}
	t.Fatal("disk transfer never completed")
}

func TestPipeliningHelpsSmallFiles(t *testing.T) {
	// 400 x 1 MB files with 0.2 s per-file request latency: at pp=1
	// each file pays the full round trip; pp=8 amortizes it.
	measure := func(pp int) float64 {
		d := dataset.ManySmall(400)
		tr := diskTransfer(t, 2, d, 0, 0.2)
		defer tr.Stop()
		r, err := tr.Run(context.Background(), Params{NC: 4, NP: 2, PP: pp}, 30)
		if err != nil {
			t.Fatal(err)
		}
		return r.Throughput
	}
	slow, fast := measure(1), measure(8)
	if fast < 2*slow {
		t.Fatalf("pp=8 (%v) not well above pp=1 (%v)", fast, slow)
	}
}

func TestDiskRateCapsThroughput(t *testing.T) {
	d := dataset.Uniform(4, 1<<30)
	tr := diskTransfer(t, 3, d, 1e8, 0.01) // 100 MB/s storage
	defer tr.Stop()
	tr.Run(context.Background(), Params{NC: 4, NP: 4}, 10) // ramp
	r, err := tr.Run(context.Background(), Params{NC: 4, NP: 4}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput > 1.05e8 {
		t.Fatalf("throughput %v exceeds the 1e8 storage rate", r.Throughput)
	}
	if r.Throughput < 0.5e8 {
		t.Fatalf("throughput %v far below the storage rate", r.Throughput)
	}
}

func TestDiskRestartRequeuesFiles(t *testing.T) {
	// Changing parameters restarts the processes; in-flight files
	// must be re-requested, and the transfer still completes with
	// exactly the dataset's bytes counted at most once per file.
	d := dataset.Uniform(10, 100<<20)
	f, _ := testFabric(t, 4)
	tr, err := f.NewTransfer(TransferConfig{
		Name:  "disk-restart",
		Files: d,
		// RestartEveryEpoch: the paper's tuner behaviour.
	})
	if err != nil {
		t.Fatal(err)
	}
	files := 0
	nc := 2
	for i := 0; i < 200; i++ {
		r, err := tr.Run(context.Background(), Params{NC: nc, NP: 4, PP: 2}, 5)
		if err != nil {
			t.Fatal(err)
		}
		files += r.Files
		nc = 2 + i%3 // keep changing params
		if r.Done {
			if files != 10 {
				t.Fatalf("completed %d files, want 10", files)
			}
			return
		}
	}
	t.Fatal("transfer with restarts never completed")
}

func TestDiskMoreProcsThanFiles(t *testing.T) {
	d := dataset.Uniform(2, 20<<20)
	tr := diskTransfer(t, 5, d, 0, 0.01)
	for i := 0; i < 50; i++ {
		r, err := tr.Run(context.Background(), Params{NC: 16, NP: 2, PP: 1}, 5)
		if err != nil {
			t.Fatal(err)
		}
		if r.Done {
			return
		}
	}
	t.Fatal("over-provisioned disk transfer never completed")
}

func TestDiskEmptyFilesCompleteImmediately(t *testing.T) {
	d := dataset.Dataset{Files: []dataset.File{
		{Name: "a", Size: 0},
		{Name: "b", Size: 10 << 20},
	}}
	tr := diskTransfer(t, 6, d, 0, 0.01)
	for i := 0; i < 50; i++ {
		r, err := tr.Run(context.Background(), Params{NC: 2, NP: 2, PP: 1}, 5)
		if err != nil {
			t.Fatal(err)
		}
		if r.Done {
			return
		}
	}
	t.Fatal("dataset with empty file never completed")
}

func TestParamsPipelining(t *testing.T) {
	if (Params{NC: 1, NP: 1}).Pipelining() != 1 {
		t.Fatal("zero PP should report depth 1")
	}
	if (Params{NC: 1, NP: 1, PP: 5}).Pipelining() != 5 {
		t.Fatal("PP not honoured")
	}
	if !(Params{NC: 1, NP: 1, PP: 3}).Valid() {
		t.Fatal("valid PP rejected")
	}
	if (Params{NC: 1, NP: 1, PP: -1}).Valid() {
		t.Fatal("negative PP accepted")
	}
	if got := (Params{NC: 2, NP: 8, PP: 4}).String(); got != "nc=2 np=8 pp=4" {
		t.Fatalf("String = %q", got)
	}
	if DefaultDisk() != (Params{NC: 2, NP: 8, PP: 4}) {
		t.Fatalf("DefaultDisk = %v", DefaultDisk())
	}
}

func TestDiskStateInternals(t *testing.T) {
	ds := newDiskState(dataset.Uniform(3, 1000), 0, 0.5)
	ds.resize(2)
	ds.assign(0, 1)
	if ds.active != 0 {
		t.Fatalf("procs active during the 0.5 s request latency: %d", ds.active)
	}
	ds.assign(1, 1) // past busyUntil
	if ds.active != 2 {
		t.Fatalf("active = %d, want 2", ds.active)
	}
	if cap := ds.capFor(0, 1, 1e9); cap != 1e9 {
		t.Fatalf("unshared disk capFor = %v", cap)
	}
	// Consume one file fully.
	if got := ds.consume(0, 2000); got != 1000 {
		t.Fatalf("consume clipped to %v, want 1000", got)
	}
	if ds.filesDone != 1 || ds.epochFiles != 1 {
		t.Fatalf("filesDone=%d epochFiles=%d", ds.filesDone, ds.epochFiles)
	}
	// Requeue the in-flight file on proc 1 plus the queued one.
	ds.requeueInFlight()
	if len(ds.queue) != 2 {
		t.Fatalf("queue after requeue = %d, want 2", len(ds.queue))
	}
	if ds.finished() {
		t.Fatal("finished with files queued")
	}
}
