package xfer

import (
	"context"
	"sync"
	"testing"

	"dstune/internal/endpoint"
	"dstune/internal/load"
	"dstune/internal/netem"
)

// testFabric builds a small 8-core source with one 10 Gb/s, 30 ms
// path. Restart times are shortened so tests can use short epochs.
func testFabric(t *testing.T, seed uint64) (*Fabric, *netem.Path) {
	t.Helper()
	f, err := NewFabric(FabricConfig{
		Seed: seed,
		Source: endpoint.Config{
			Name:         "src",
			Cores:        8,
			CorePumpRate: 1.25e9,
			RestartBase:  0.5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.AddPath(netem.Config{
		Name:       "wan",
		Capacity:   1.25e9,
		BaseRTT:    0.03,
		RandomLoss: 1e-5,
		MaxCwnd:    8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, p
}

func TestRunSingleEpoch(t *testing.T) {
	f, _ := testFabric(t, 1)
	tr, err := f.NewTransfer(TransferConfig{Name: "t", Bytes: Unbounded})
	if err != nil {
		t.Fatal(err)
	}
	r, err := tr.Run(context.Background(), Params{NC: 4, NP: 4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes <= 0 {
		t.Fatal("no bytes moved")
	}
	if r.Throughput <= 0 || r.BestCase <= 0 {
		t.Fatalf("throughput %v / best %v", r.Throughput, r.BestCase)
	}
	if r.Start != 0 || r.End < 10 || r.End > 10.1 {
		t.Fatalf("epoch bounds [%v, %v], want [0, ~10]", r.Start, r.End)
	}
	if r.Done {
		t.Fatal("unbounded transfer reported done")
	}
	if f.Now() < 10 {
		t.Fatalf("fabric time %v, want >= 10", f.Now())
	}
}

func TestTransferCompletes(t *testing.T) {
	f, _ := testFabric(t, 2)
	tr, err := f.NewTransfer(TransferConfig{Name: "t", Bytes: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := 0; i < 100; i++ {
		r, err := tr.Run(context.Background(), Params{NC: 4, NP: 4}, 5)
		if err != nil {
			t.Fatal(err)
		}
		total += r.Bytes
		if r.Done {
			if tr.Remaining() != 0 {
				t.Fatalf("done but Remaining() = %v", tr.Remaining())
			}
			if total < 0.999e9 || total > 1.001e9 {
				t.Fatalf("total bytes %v, want ~1e9", total)
			}
			return
		}
	}
	t.Fatal("transfer never completed")
}

func TestRunAfterDone(t *testing.T) {
	f, _ := testFabric(t, 3)
	tr, _ := f.NewTransfer(TransferConfig{Name: "t", Bytes: 1e8})
	for i := 0; i < 50; i++ {
		r, err := tr.Run(context.Background(), Params{NC: 4, NP: 4}, 5)
		if err != nil {
			t.Fatal(err)
		}
		if r.Done {
			break
		}
	}
	r, err := tr.Run(context.Background(), Params{NC: 4, NP: 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Done || r.Bytes != 0 {
		t.Fatalf("post-done Run = %+v, want done with no bytes", r)
	}
}

func TestRestartPolicies(t *testing.T) {
	f, _ := testFabric(t, 4)
	every, _ := f.NewTransfer(TransferConfig{Name: "every", Bytes: Unbounded})
	r1, _ := every.Run(context.Background(), Params{NC: 2, NP: 2}, 5)
	r2, _ := every.Run(context.Background(), Params{NC: 2, NP: 2}, 5)
	if r1.DeadTime <= 0 || r2.DeadTime <= 0 {
		t.Fatalf("RestartEveryEpoch dead times: %v, %v; want both > 0", r1.DeadTime, r2.DeadTime)
	}
	every.Stop()

	f2, _ := testFabric(t, 4)
	onchg, _ := f2.NewTransfer(TransferConfig{Name: "onchange", Bytes: Unbounded, Policy: RestartOnChange})
	r1, _ = onchg.Run(context.Background(), Params{NC: 2, NP: 2}, 5)
	r2, _ = onchg.Run(context.Background(), Params{NC: 2, NP: 2}, 5)
	r3, _ := onchg.Run(context.Background(), Params{NC: 3, NP: 2}, 5)
	if r1.DeadTime <= 0 {
		t.Fatalf("initial launch dead time = %v, want > 0", r1.DeadTime)
	}
	if r2.DeadTime != 0 {
		t.Fatalf("unchanged params dead time = %v, want 0", r2.DeadTime)
	}
	if r3.DeadTime <= 0 {
		t.Fatalf("changed params dead time = %v, want > 0", r3.DeadTime)
	}
}

func TestBestCaseExceedsObservedWithRestarts(t *testing.T) {
	f, _ := testFabric(t, 5)
	tr, _ := f.NewTransfer(TransferConfig{Name: "t", Bytes: Unbounded})
	tr.Run(context.Background(), Params{NC: 4, NP: 4}, 5)
	r, _ := tr.Run(context.Background(), Params{NC: 4, NP: 4}, 5)
	if r.BestCase <= r.Throughput {
		t.Fatalf("best case %v not above observed %v despite dead time %v",
			r.BestCase, r.Throughput, r.DeadTime)
	}
}

func TestRunErrors(t *testing.T) {
	f, _ := testFabric(t, 6)
	tr, _ := f.NewTransfer(TransferConfig{Name: "t", Bytes: Unbounded})
	if _, err := tr.Run(context.Background(), Params{NC: 1, NP: 1}, 0); err != ErrBadEpoch {
		t.Fatalf("zero epoch: %v, want ErrBadEpoch", err)
	}
	if _, err := tr.Run(context.Background(), Params{NC: 0, NP: 1}, 5); err != ErrBadParams {
		t.Fatalf("nc=0: %v, want ErrBadParams", err)
	}
	tr.Stop()
	if _, err := tr.Run(context.Background(), Params{NC: 1, NP: 1}, 5); err != ErrStopped {
		t.Fatalf("after stop: %v, want ErrStopped", err)
	}
}

func TestNewTransferErrors(t *testing.T) {
	f, err := NewFabric(FabricConfig{Source: endpoint.Config{Cores: 8, CorePumpRate: 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.NewTransfer(TransferConfig{Bytes: 1e9}); err == nil {
		t.Fatal("transfer on pathless fabric accepted")
	}
	f2, _ := testFabric(t, 7)
	if _, err := f2.NewTransfer(TransferConfig{Bytes: 0}); err == nil {
		t.Fatal("zero-size transfer accepted")
	}
}

func TestNewFabricInvalidSource(t *testing.T) {
	if _, err := NewFabric(FabricConfig{}); err == nil {
		t.Fatal("invalid source accepted")
	}
}

func TestComputeLoadReducesThroughput(t *testing.T) {
	measure := func(cmp int) float64 {
		f, _ := testFabric(t, 8)
		f.SetLoad(load.Constant(load.Load{Cmp: cmp}), nil)
		tr, _ := f.NewTransfer(TransferConfig{Name: "t", Bytes: Unbounded, Policy: RestartOnChange})
		tr.Run(context.Background(), Params{NC: 2, NP: 8}, 10) // warm up
		r, _ := tr.Run(context.Background(), Params{NC: 2, NP: 8}, 20)
		tr.Stop()
		return r.Throughput
	}
	free, loaded := measure(0), measure(16)
	if loaded >= free/2 {
		t.Fatalf("cmp=16 throughput %v not well below free %v", loaded, free)
	}
}

func TestTrafficLoadReducesThroughput(t *testing.T) {
	measure := func(tfr int) float64 {
		f, _ := testFabric(t, 9)
		f.SetLoad(load.Constant(load.Load{Tfr: tfr}), nil)
		tr, _ := f.NewTransfer(TransferConfig{Name: "t", Bytes: Unbounded, Policy: RestartOnChange})
		tr.Run(context.Background(), Params{NC: 2, NP: 8}, 30) // warm up: external flows ramp too
		r, _ := tr.Run(context.Background(), Params{NC: 2, NP: 8}, 30)
		tr.Stop()
		return r.Throughput
	}
	free, loaded := measure(0), measure(32)
	if loaded >= 0.8*free {
		t.Fatalf("tfr=32 throughput %v not well below free %v", loaded, free)
	}
}

func TestMoreConcurrencyHelpsUnderComputeLoad(t *testing.T) {
	measure := func(nc int) float64 {
		f, _ := testFabric(t, 10)
		f.SetLoad(load.Constant(load.Load{Cmp: 16}), nil)
		tr, _ := f.NewTransfer(TransferConfig{Name: "t", Bytes: Unbounded, Policy: RestartOnChange})
		tr.Run(context.Background(), Params{NC: nc, NP: 1}, 10)
		r, _ := tr.Run(context.Background(), Params{NC: nc, NP: 1}, 20)
		tr.Stop()
		return r.Throughput
	}
	low, high := measure(2), measure(32)
	if high <= 2*low {
		t.Fatalf("nc=32 (%v) should far exceed nc=2 (%v) under compute load", high, low)
	}
}

func TestLoadScheduleStep(t *testing.T) {
	f, _ := testFabric(t, 11)
	f.SetLoad(load.Step(15, load.Load{Cmp: 32}, load.Load{}), nil)
	tr, _ := f.NewTransfer(TransferConfig{Name: "t", Bytes: Unbounded, Policy: RestartOnChange})
	rLoaded, _ := tr.Run(context.Background(), Params{NC: 2, NP: 8}, 15)
	tr.Run(context.Background(), Params{NC: 2, NP: 8}, 10) // ramp after load drop
	rFree, _ := tr.Run(context.Background(), Params{NC: 2, NP: 8}, 10)
	tr.Stop()
	if rFree.Throughput <= 2*rLoaded.Throughput {
		t.Fatalf("load release: %v -> %v, want large gain", rLoaded.Throughput, rFree.Throughput)
	}
}

func TestTwoTransfersLockstep(t *testing.T) {
	run := func(seed uint64) (float64, float64) {
		f, _ := testFabric(t, seed)
		a, _ := f.NewTransfer(TransferConfig{Name: "a", Bytes: Unbounded})
		b, _ := f.NewTransfer(TransferConfig{Name: "b", Bytes: Unbounded})
		var wg sync.WaitGroup
		var aBytes, bBytes float64
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				r, err := a.Run(context.Background(), Params{NC: 2, NP: 2}, 5)
				if err != nil {
					t.Error(err)
					return
				}
				aBytes += r.Bytes
			}
			a.Stop()
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				r, err := b.Run(context.Background(), Params{NC: 4, NP: 2}, 5)
				if err != nil {
					t.Error(err)
					return
				}
				bBytes += r.Bytes
			}
			b.Stop()
		}()
		wg.Wait()
		return aBytes, bBytes
	}
	a1, b1 := run(42)
	if a1 <= 0 || b1 <= 0 {
		t.Fatalf("transfers made no progress: %v, %v", a1, b1)
	}
	a2, b2 := run(42)
	if a1 != a2 || b1 != b2 {
		t.Fatalf("concurrent runs not deterministic: (%v,%v) vs (%v,%v)", a1, b1, a2, b2)
	}
}

func TestStopReleasesBarrier(t *testing.T) {
	f, _ := testFabric(t, 12)
	a, _ := f.NewTransfer(TransferConfig{Name: "a", Bytes: Unbounded})
	b, _ := f.NewTransfer(TransferConfig{Name: "b", Bytes: Unbounded})
	done := make(chan struct{})
	go func() {
		// b never runs; stopping it must unblock a.
		b.Stop()
		if _, err := a.Run(context.Background(), Params{NC: 1, NP: 1}, 2); err != nil {
			t.Error(err)
		}
		a.Stop()
		close(done)
	}()
	<-done
}

func TestSecondPath(t *testing.T) {
	f, p1 := testFabric(t, 13)
	p2, err := f.AddPath(netem.Config{
		Name:       "wan2",
		Capacity:   2.5e9,
		BaseRTT:    0.033,
		RandomLoss: 1e-5,
		MaxCwnd:    8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := f.NewTransfer(TransferConfig{Name: "t", Bytes: Unbounded, Path: p2})
	r, err := tr.Run(context.Background(), Params{NC: 4, NP: 4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	tr.Stop()
	if r.Bytes <= 0 {
		t.Fatal("no progress on second path")
	}
	if p1.Flows() != 0 {
		t.Fatalf("first path has %d flows, want 0", p1.Flows())
	}
}

func TestNowTracksTransferTime(t *testing.T) {
	f, _ := testFabric(t, 14)
	warm, _ := f.NewTransfer(TransferConfig{Name: "warm", Bytes: Unbounded})
	warm.Run(context.Background(), Params{NC: 1, NP: 1}, 5)
	warm.Stop()
	tr, _ := f.NewTransfer(TransferConfig{Name: "t", Bytes: Unbounded})
	if tr.Now() != 0 {
		t.Fatalf("Now() before first Run = %v, want 0", tr.Now())
	}
	r, _ := tr.Run(context.Background(), Params{NC: 1, NP: 1}, 5)
	if r.Start != 0 {
		t.Fatalf("first epoch Start = %v, want 0 (transfer-relative)", r.Start)
	}
	if got := tr.Now(); got < 5 || got > 5.1 {
		t.Fatalf("Now() after one 5s epoch = %v", got)
	}
	tr.Stop()
}

func TestParamsHelpers(t *testing.T) {
	p := Params{NC: 2, NP: 8}
	if p.Streams() != 16 {
		t.Fatalf("Streams = %d", p.Streams())
	}
	if !p.Valid() || (Params{NC: 0, NP: 1}).Valid() || (Params{NC: 1, NP: -1}).Valid() {
		t.Fatal("Valid misbehaves")
	}
	if p.String() != "nc=2 np=8" {
		t.Fatalf("String = %q", p.String())
	}
	if Default() != (Params{NC: 2, NP: 8}) {
		t.Fatalf("Default = %v", Default())
	}
}

func TestRestartPolicyString(t *testing.T) {
	if RestartEveryEpoch.String() != "restart-every-epoch" ||
		RestartOnChange.String() != "restart-on-change" {
		t.Fatal("policy strings")
	}
	if RestartPolicy(99).String() == "" {
		t.Fatal("unknown policy string empty")
	}
}

func TestThirdPartyTrafficNetworkOnly(t *testing.T) {
	// Net load shares the path but, unlike ext.tfr, consumes no
	// source CPU: the restart dead time must stay at the unloaded
	// value while throughput still drops.
	measure := func(l load.Load) (tput, dead float64) {
		f, _ := testFabric(t, 20)
		f.SetLoad(load.Constant(l), nil)
		tr, _ := f.NewTransfer(TransferConfig{Name: "t", Bytes: Unbounded})
		defer tr.Stop()
		tr.Run(context.Background(), Params{NC: 2, NP: 8}, 30) // warm up; externals ramp
		r, err := tr.Run(context.Background(), Params{NC: 2, NP: 8}, 30)
		if err != nil {
			t.Fatal(err)
		}
		return r.Throughput, r.DeadTime
	}
	freeT, freeD := measure(load.Load{})
	netT, netD := measure(load.Load{Net: 48})
	_, tfrD := measure(load.Load{Tfr: 48})
	if netT >= 0.8*freeT {
		t.Fatalf("48 third-party streams barely moved throughput: %v vs %v", netT, freeT)
	}
	if netD != freeD {
		t.Fatalf("third-party traffic changed restart time: %v vs %v", netD, freeD)
	}
	if tfrD <= netD {
		t.Fatalf("ext.tfr restart time %v not above third-party %v", tfrD, netD)
	}
}

func TestByteConservationAcrossRestarts(t *testing.T) {
	// Sum of per-epoch bytes must equal the transfer size exactly,
	// regardless of how often the params change (restarts).
	f, _ := testFabric(t, 31)
	const size = 3e9
	tr, _ := f.NewTransfer(TransferConfig{Name: "t", Bytes: size})
	var sum float64
	nc := 1
	for i := 0; i < 500; i++ {
		r, err := tr.Run(context.Background(), Params{NC: nc, NP: 2}, 4)
		if err != nil {
			t.Fatal(err)
		}
		sum += r.Bytes
		nc = 1 + (i % 5)
		if r.Done {
			if sum < size-1 || sum > size+1 {
				t.Fatalf("accounted %v bytes, want %v", sum, size)
			}
			return
		}
	}
	t.Fatal("never completed")
}

func TestSimultaneousDeterminismViaFabric(t *testing.T) {
	// Two concurrent tuner-style drivers with unequal epochs must
	// still be deterministic per seed.
	run := func() (float64, float64) {
		f, _ := testFabric(t, 33)
		a, _ := f.NewTransfer(TransferConfig{Name: "a", Bytes: Unbounded})
		b, _ := f.NewTransfer(TransferConfig{Name: "b", Bytes: Unbounded})
		var wg sync.WaitGroup
		var ab, bb float64
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				r, _ := a.Run(context.Background(), Params{NC: 1 + i%2, NP: 2}, 3)
				ab += r.Bytes
			}
			a.Stop()
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				r, _ := b.Run(context.Background(), Params{NC: 3, NP: 1}, 4.5)
				bb += r.Bytes
			}
			b.Stop()
		}()
		wg.Wait()
		return ab, bb
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("non-deterministic: (%v,%v) vs (%v,%v)", a1, b1, a2, b2)
	}
}
