package tcpmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func allAlgorithms() []Algorithm {
	return []Algorithm{NewReno(), NewCUBIC(), NewHTCP(), NewScalable()}
}

func TestNewStreamDefaults(t *testing.T) {
	s := NewStream(0, 0)
	if s.MSS != DefaultMSS {
		t.Fatalf("MSS = %v, want %v", s.MSS, DefaultMSS)
	}
	if s.Cwnd != 10*DefaultMSS {
		t.Fatalf("initial Cwnd = %v, want %v", s.Cwnd, 10*DefaultMSS)
	}
	if !s.SlowStart {
		t.Fatal("new stream not in slow start")
	}
}

func TestNewStreamCapApplied(t *testing.T) {
	s := NewStream(1000, 5000)
	if s.Cwnd > 5000 {
		t.Fatalf("Cwnd = %v exceeds cap 5000", s.Cwnd)
	}
}

func TestSlowStartDoubles(t *testing.T) {
	for _, alg := range allAlgorithms() {
		s := NewStream(1000, 0)
		before := s.Cwnd
		alg.OnRTT(&s, 0.03)
		if s.Cwnd != 2*before {
			t.Errorf("%s: slow start Cwnd = %v, want %v", alg.Name(), s.Cwnd, 2*before)
		}
	}
}

func TestSlowStartExitsAtSsthresh(t *testing.T) {
	for _, alg := range allAlgorithms() {
		s := NewStream(1000, 0)
		s.Ssthresh = 15000
		alg.OnRTT(&s, 0.03) // 10000 -> 20000, clipped to 15000
		if s.SlowStart {
			t.Errorf("%s: still in slow start past ssthresh", alg.Name())
		}
		if s.Cwnd != 15000 {
			t.Errorf("%s: Cwnd = %v, want 15000", alg.Name(), s.Cwnd)
		}
	}
}

func TestLossReducesWindow(t *testing.T) {
	for _, alg := range allAlgorithms() {
		s := NewStream(1000, 0)
		s.SlowStart = false
		s.Cwnd = 1e6
		alg.OnLoss(&s)
		if s.Cwnd >= 1e6 {
			t.Errorf("%s: loss did not reduce Cwnd (%v)", alg.Name(), s.Cwnd)
		}
		if s.Cwnd < s.MSS {
			t.Errorf("%s: Cwnd = %v below one MSS", alg.Name(), s.Cwnd)
		}
		if s.Losses != 1 {
			t.Errorf("%s: Losses = %d, want 1", alg.Name(), s.Losses)
		}
		if s.SinceLoss != 0 {
			t.Errorf("%s: SinceLoss = %v, want 0", alg.Name(), s.SinceLoss)
		}
	}
}

func TestGrowthMonotoneInCongestionAvoidance(t *testing.T) {
	for _, alg := range allAlgorithms() {
		s := NewStream(1000, 0)
		s.SlowStart = false
		s.Cwnd = 50000
		s.WMax = 100000
		prev := s.Cwnd
		for i := 0; i < 100; i++ {
			s.SinceLoss += 0.03
			alg.OnRTT(&s, 0.03)
			if s.Cwnd < prev {
				t.Errorf("%s: window shrank without loss: %v -> %v", alg.Name(), prev, s.Cwnd)
				break
			}
			prev = s.Cwnd
		}
	}
}

func TestWindowRespectsCapProperty(t *testing.T) {
	for _, alg := range allAlgorithms() {
		alg := alg
		f := func(growRTTs uint8) bool {
			s := NewStream(1000, 64000)
			for i := 0; i < int(growRTTs); i++ {
				s.SinceLoss += 0.03
				alg.OnRTT(&s, 0.03)
				if s.Cwnd > 64000 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
	}
}

func TestRenoHalves(t *testing.T) {
	r := NewReno()
	s := NewStream(1000, 0)
	s.SlowStart = false
	s.Cwnd = 80000
	r.OnLoss(&s)
	if s.Cwnd != 40000 {
		t.Fatalf("Reno loss: Cwnd = %v, want 40000", s.Cwnd)
	}
	s.Cwnd = 40000
	r.OnRTT(&s, 0.01)
	if s.Cwnd != 41000 {
		t.Fatalf("Reno growth: Cwnd = %v, want 41000", s.Cwnd)
	}
}

func TestCUBICDecreaseFactor(t *testing.T) {
	c := NewCUBIC()
	s := NewStream(1000, 0)
	s.SlowStart = false
	s.Cwnd = 100000
	c.OnLoss(&s)
	if math.Abs(s.Cwnd-70000) > 1e-9 {
		t.Fatalf("CUBIC loss: Cwnd = %v, want 70000", s.Cwnd)
	}
	if s.WMax != 100000 {
		t.Fatalf("CUBIC loss: WMax = %v, want 100000", s.WMax)
	}
}

func TestCUBICConcaveRecoveryTowardsWMax(t *testing.T) {
	// After a loss CUBIC should approach its prior WMax and plateau
	// near it before probing beyond.
	c := NewCUBIC()
	s := NewStream(1448, 0)
	s.SlowStart = false
	s.Cwnd = 100 * s.MSS
	c.OnLoss(&s)
	rtt := 0.03
	var atWMax float64 = -1
	for i := 0; i < 2000; i++ {
		s.SinceLoss += rtt
		c.OnRTT(&s, rtt)
		if atWMax < 0 && s.Cwnd >= s.WMax {
			atWMax = s.SinceLoss
		}
	}
	if atWMax < 0 {
		t.Fatal("CUBIC never recovered to WMax")
	}
	// K = cbrt(100 * 0.3 / 0.4) ~ 4.2 s; recovery should land in the
	// right ballpark.
	if atWMax > 10 {
		t.Fatalf("CUBIC recovery took %v s, expected a few seconds", atWMax)
	}
}

func TestHTCPAlphaRegimes(t *testing.T) {
	h := NewHTCP()
	if a := h.alpha(0.5); a != 1 {
		t.Fatalf("alpha(0.5) = %v, want 1 (low-speed regime)", a)
	}
	if a := h.alpha(1.0); a != 1 {
		t.Fatalf("alpha(1.0) = %v, want 1", a)
	}
	// alpha(2) = 1 + 10*1 + 0.25*1 = 11.25
	if a := h.alpha(2.0); math.Abs(a-11.25) > 1e-9 {
		t.Fatalf("alpha(2.0) = %v, want 11.25", a)
	}
	// Quadratic growth: alpha must be increasing in delta.
	prev := 0.0
	for d := 0.0; d < 10; d += 0.1 {
		a := h.alpha(d)
		if a < prev {
			t.Fatalf("alpha not monotone at delta=%v", d)
		}
		prev = a
	}
}

func TestHTCPAdaptiveBackoff(t *testing.T) {
	h := NewHTCP()
	s := NewStream(1000, 0)
	s.SlowStart = false
	s.Cwnd = 100000
	// No RTT info: uses BetaMax.
	h.OnLoss(&s)
	if math.Abs(s.Cwnd-80000) > 1e-9 {
		t.Fatalf("no-RTT backoff: Cwnd = %v, want 80000", s.Cwnd)
	}
	// Strong queueing (min/max = 0.25) clamps to BetaMin.
	s.Cwnd = 100000
	s.MinRTT, s.MaxRTT = 0.01, 0.04
	h.OnLoss(&s)
	if math.Abs(s.Cwnd-50000) > 1e-9 {
		t.Fatalf("clamped backoff: Cwnd = %v, want 50000", s.Cwnd)
	}
	// Mild queueing uses the ratio directly.
	s.Cwnd = 100000
	s.MinRTT, s.MaxRTT = 0.03, 0.05
	h.OnLoss(&s)
	if math.Abs(s.Cwnd-60000) > 1e-9 {
		t.Fatalf("ratio backoff: Cwnd = %v, want 60000", s.Cwnd)
	}
}

func TestHTCPFasterThanRenoAfterDeltaL(t *testing.T) {
	h, r := NewHTCP(), NewReno()
	hs := NewStream(1000, 0)
	rs := NewStream(1000, 0)
	for _, s := range []*Stream{&hs, &rs} {
		s.SlowStart = false
		s.Cwnd = 10000
		s.SinceLoss = 5 // well past DeltaL
	}
	h.OnRTT(&hs, 0.03)
	r.OnRTT(&rs, 0.03)
	if hs.Cwnd <= rs.Cwnd {
		t.Fatalf("H-TCP (%v) not faster than Reno (%v) at delta=5s", hs.Cwnd, rs.Cwnd)
	}
}

func TestScalableMultiplicativeIncrease(t *testing.T) {
	sc := NewScalable()
	s := NewStream(1000, 0)
	s.SlowStart = false
	s.Cwnd = 1e6
	sc.OnRTT(&s, 0.03)
	if math.Abs(s.Cwnd-1.01e6) > 1 {
		t.Fatalf("Scalable growth: Cwnd = %v, want 1.01e6", s.Cwnd)
	}
	sc.OnLoss(&s)
	if math.Abs(s.Cwnd-1.01e6*0.875) > 1 {
		t.Fatalf("Scalable loss: Cwnd = %v, want %v", s.Cwnd, 1.01e6*0.875)
	}
}

func TestScalableSmallWindowFloor(t *testing.T) {
	// At tiny windows the 1% increase is below one MSS; growth must
	// not stall.
	sc := NewScalable()
	s := NewStream(1000, 0)
	s.SlowStart = false
	s.Cwnd = 2000
	sc.OnRTT(&s, 0.03)
	if s.Cwnd < 3000 {
		t.Fatalf("Scalable small-window growth: Cwnd = %v, want >= 3000", s.Cwnd)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		alg, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if alg.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, alg.Name())
		}
	}
	if _, err := ByName("bbr"); err == nil {
		t.Fatal("ByName(bbr) succeeded, want error")
	}
}

func TestRate(t *testing.T) {
	s := NewStream(1000, 0)
	s.Cwnd = 300000
	if got := s.Rate(0.03); math.Abs(got-1e7) > 1e-6 {
		t.Fatalf("Rate = %v, want 1e7", got)
	}
	if got := s.Rate(0); got != 0 {
		t.Fatalf("Rate(0) = %v, want 0", got)
	}
}

func TestObserveRTT(t *testing.T) {
	s := NewStream(1000, 0)
	s.ObserveRTT(0.03)
	s.ObserveRTT(0.05)
	s.ObserveRTT(0.02)
	s.ObserveRTT(0) // ignored
	if s.MinRTT != 0.02 || s.MaxRTT != 0.05 {
		t.Fatalf("min/max = %v/%v, want 0.02/0.05", s.MinRTT, s.MaxRTT)
	}
}

func TestMathisRate(t *testing.T) {
	// MSS=1448, RTT=30ms, p=1e-4: 1448/0.03*sqrt(15000) ~ 5.9 MB/s.
	r := MathisRate(1448, 0.03, 1e-4)
	if r < 5e6 || r > 7e6 {
		t.Fatalf("MathisRate = %v, want ~5.9e6", r)
	}
	if !math.IsInf(MathisRate(1448, 0.03, 0), 1) {
		t.Fatal("MathisRate with p=0 should be +Inf")
	}
	// Quadrupling loss halves throughput.
	r2 := MathisRate(1448, 0.03, 4e-4)
	if math.Abs(r2*2-r) > 1 {
		t.Fatalf("Mathis scaling: %v vs %v", r2*2, r)
	}
}

func TestLossNeverBelowOneMSS(t *testing.T) {
	for _, alg := range allAlgorithms() {
		alg := alg
		f := func(nLosses uint8) bool {
			s := NewStream(1000, 0)
			s.SlowStart = false
			for i := 0; i < int(nLosses); i++ {
				alg.OnLoss(&s)
				if s.Cwnd < s.MSS {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
	}
}
