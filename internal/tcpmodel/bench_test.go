package tcpmodel

import "testing"

// benchAlg measures the per-RTT update plus an occasional loss.
func benchAlg(b *testing.B, alg Algorithm) {
	b.Helper()
	s := NewStream(0, 4<<20)
	s.SlowStart = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SinceLoss += 0.012
		alg.OnRTT(&s, 0.012)
		if i%256 == 255 {
			alg.OnLoss(&s)
		}
	}
}

func BenchmarkReno(b *testing.B)     { benchAlg(b, NewReno()) }
func BenchmarkCUBIC(b *testing.B)    { benchAlg(b, NewCUBIC()) }
func BenchmarkHTCP(b *testing.B)     { benchAlg(b, NewHTCP()) }
func BenchmarkScalable(b *testing.B) { benchAlg(b, NewScalable()) }
