// Package tcpmodel implements fluid models of TCP congestion-control
// algorithms: the per-RTT window growth and the loss response of Reno,
// CUBIC, H-TCP, and Scalable TCP.
//
// The paper's testbed ran Hamilton TCP (H-TCP) on its endpoints and
// attributes the benefit of parallel streams to the additive-increase /
// multiplicative-decrease window dynamics of these algorithms: the slow
// additive recovery after each loss leaves bandwidth unused that extra
// streams can claim. The network emulator (internal/netem) advances one
// Stream per TCP connection with one of these algorithms; everything
// here is in bytes and seconds.
package tcpmodel

import (
	"fmt"
	"math"
)

// DefaultMSS is the maximum segment size assumed throughout, in bytes.
// 1448 is the usual TCP payload of a 1500-byte Ethernet frame.
const DefaultMSS = 1448

// Stream holds the per-connection congestion state advanced by an
// Algorithm. Fields are exported so that the emulator and tests can
// observe and perturb them directly.
type Stream struct {
	// Cwnd is the congestion window in bytes.
	Cwnd float64
	// Ssthresh is the slow-start threshold in bytes.
	Ssthresh float64
	// MSS is the maximum segment size in bytes.
	MSS float64
	// MaxCwnd caps the window (socket buffer limit); 0 means no cap.
	MaxCwnd float64
	// SlowStart reports whether the stream is in slow start.
	SlowStart bool
	// SinceLoss is the time in seconds since the last congestion
	// event, advanced by the emulator. CUBIC and H-TCP growth are
	// functions of this value.
	SinceLoss float64
	// WMax is the window (bytes) at the last loss; used by CUBIC.
	WMax float64
	// MinRTT and MaxRTT are the observed round-trip extremes in
	// seconds, maintained by the emulator; used by H-TCP's adaptive
	// backoff. Zero values mean "not yet observed".
	MinRTT, MaxRTT float64
	// Losses counts congestion events, for diagnostics.
	Losses uint64
}

// NewStream returns a stream in slow start with an initial window of
// ten segments (RFC 6928) and the given window cap. A non-positive mss
// selects DefaultMSS.
func NewStream(mss, maxCwnd float64) Stream {
	if mss <= 0 {
		mss = DefaultMSS
	}
	s := Stream{
		Cwnd:      10 * mss,
		Ssthresh:  math.Inf(1),
		MSS:       mss,
		MaxCwnd:   maxCwnd,
		SlowStart: true,
	}
	s.clamp()
	return s
}

// Rate returns the window-limited sending rate in bytes per second for
// the given round-trip time.
func (s *Stream) Rate(rtt float64) float64 {
	if rtt <= 0 {
		return 0
	}
	return s.Cwnd / rtt
}

// ObserveRTT folds one RTT sample into the stream's min/max tracking.
func (s *Stream) ObserveRTT(rtt float64) {
	if rtt <= 0 {
		return
	}
	if s.MinRTT == 0 || rtt < s.MinRTT {
		s.MinRTT = rtt
	}
	if rtt > s.MaxRTT {
		s.MaxRTT = rtt
	}
}

// clamp keeps the window within [MSS, MaxCwnd].
func (s *Stream) clamp() {
	if s.MaxCwnd > 0 && s.Cwnd > s.MaxCwnd {
		s.Cwnd = s.MaxCwnd
	}
	if s.Cwnd < s.MSS {
		s.Cwnd = s.MSS
	}
}

// Algorithm is a TCP congestion-control policy. Implementations must be
// safe for use by multiple Streams concurrently only if each Stream is
// confined to one goroutine; the methods mutate the Stream, never the
// Algorithm.
type Algorithm interface {
	// Name returns the algorithm's conventional name.
	Name() string
	// OnRTT advances the window after one round trip with no loss.
	OnRTT(s *Stream, rtt float64)
	// OnLoss applies the multiplicative decrease for one congestion
	// event.
	OnLoss(s *Stream)
}

// slowStartStep performs the doubling phase shared by all algorithms.
// It reports whether the stream was (and remains) in slow start.
func slowStartStep(s *Stream) bool {
	if !s.SlowStart {
		return false
	}
	s.Cwnd *= 2
	if s.Cwnd >= s.Ssthresh {
		s.Cwnd = s.Ssthresh
		s.SlowStart = false
	}
	s.clamp()
	return true
}

// lossCommon applies bookkeeping shared by all loss responses.
func lossCommon(s *Stream) {
	s.SlowStart = false
	s.SinceLoss = 0
	s.WMax = s.Cwnd
	s.Losses++
}

// Reno implements classic TCP Reno AIMD: +1 MSS per RTT, halve on loss.
type Reno struct{}

// NewReno returns the Reno algorithm.
func NewReno() Reno { return Reno{} }

// Name implements Algorithm.
func (Reno) Name() string { return "reno" }

// OnRTT implements Algorithm.
func (Reno) OnRTT(s *Stream, rtt float64) {
	if slowStartStep(s) {
		return
	}
	s.Cwnd += s.MSS
	s.clamp()
}

// OnLoss implements Algorithm.
func (Reno) OnLoss(s *Stream) {
	lossCommon(s)
	s.Ssthresh = math.Max(s.Cwnd/2, 2*s.MSS)
	s.Cwnd = s.Ssthresh
	s.clamp()
}

// CUBIC implements the CUBIC window growth function (Ha, Rhee, Xu,
// 2008), the Linux default. Growth is a cubic function of the time
// since the last loss, independent of RTT, with a 0.7 multiplicative
// decrease.
type CUBIC struct {
	// C is the cubic scaling constant in MSS/s^3; the standard value
	// is 0.4.
	C float64
	// Beta is the window decrease factor; the standard value is 0.7.
	Beta float64
}

// NewCUBIC returns CUBIC with the standard constants.
func NewCUBIC() CUBIC { return CUBIC{C: 0.4, Beta: 0.7} }

// Name implements Algorithm.
func (CUBIC) Name() string { return "cubic" }

// OnRTT implements Algorithm.
func (c CUBIC) OnRTT(s *Stream, rtt float64) {
	if slowStartStep(s) {
		return
	}
	wmax := s.WMax / s.MSS // in segments
	if wmax <= 0 {
		wmax = s.Cwnd / s.MSS
	}
	k := math.Cbrt(wmax * (1 - c.Beta) / c.C)
	t := s.SinceLoss + rtt
	target := (c.C*math.Pow(t-k, 3) + wmax) * s.MSS
	if target > s.Cwnd {
		// Standard CUBIC paces toward the target over one RTT.
		s.Cwnd += (target - s.Cwnd)
	} else {
		// TCP-friendly floor: grow at least like Reno.
		s.Cwnd += s.MSS
	}
	s.clamp()
}

// OnLoss implements Algorithm.
func (c CUBIC) OnLoss(s *Stream) {
	lossCommon(s)
	s.Ssthresh = math.Max(s.Cwnd*c.Beta, 2*s.MSS)
	s.Cwnd = s.Ssthresh
	s.clamp()
}

// HTCP implements Hamilton TCP (Leith & Shorten, 2004): the additive
// increase grows quadratically with the time since the last loss, and
// the backoff factor adapts to the observed RTT ratio. This is the
// algorithm deployed on the paper's endpoints.
type HTCP struct {
	// DeltaL is the low-speed threshold in seconds below which H-TCP
	// behaves like Reno; the standard value is 1 s.
	DeltaL float64
	// BetaMin and BetaMax bound the adaptive backoff factor; the
	// standard bounds are 0.5 and 0.8.
	BetaMin, BetaMax float64
}

// NewHTCP returns H-TCP with the standard constants.
func NewHTCP() HTCP { return HTCP{DeltaL: 1.0, BetaMin: 0.5, BetaMax: 0.8} }

// Name implements Algorithm.
func (HTCP) Name() string { return "htcp" }

// alpha returns the additive increase in segments per RTT for time
// delta since the last loss.
func (h HTCP) alpha(delta float64) float64 {
	if delta <= h.DeltaL {
		return 1
	}
	d := delta - h.DeltaL
	return 1 + 10*d + 0.25*d*d
}

// OnRTT implements Algorithm.
func (h HTCP) OnRTT(s *Stream, rtt float64) {
	if slowStartStep(s) {
		return
	}
	s.Cwnd += h.alpha(s.SinceLoss) * s.MSS
	s.clamp()
}

// OnLoss implements Algorithm.
func (h HTCP) OnLoss(s *Stream) {
	lossCommon(s)
	beta := h.BetaMax
	if s.MaxRTT > 0 && s.MinRTT > 0 {
		beta = s.MinRTT / s.MaxRTT
		if beta < h.BetaMin {
			beta = h.BetaMin
		}
		if beta > h.BetaMax {
			beta = h.BetaMax
		}
	}
	s.Ssthresh = math.Max(s.Cwnd*beta, 2*s.MSS)
	s.Cwnd = s.Ssthresh
	s.clamp()
}

// Scalable implements Scalable TCP (Kelly, 2003): multiplicative
// increase of 1% per RTT and a 0.875 decrease, giving loss-recovery
// times independent of window size.
type Scalable struct {
	// A is the per-RTT multiplicative increase; the standard value is
	// 0.01.
	A float64
	// Beta is the decrease factor; the standard value is 0.875.
	Beta float64
}

// NewScalable returns Scalable TCP with the standard constants.
func NewScalable() Scalable { return Scalable{A: 0.01, Beta: 0.875} }

// Name implements Algorithm.
func (Scalable) Name() string { return "scalable" }

// OnRTT implements Algorithm.
func (sc Scalable) OnRTT(s *Stream, rtt float64) {
	if slowStartStep(s) {
		return
	}
	s.Cwnd += math.Max(sc.A*s.Cwnd, s.MSS)
	s.clamp()
}

// OnLoss implements Algorithm.
func (sc Scalable) OnLoss(s *Stream) {
	lossCommon(s)
	s.Ssthresh = math.Max(s.Cwnd*sc.Beta, 2*s.MSS)
	s.Cwnd = s.Ssthresh
	s.clamp()
}

// ByName returns the algorithm with the given conventional name
// ("reno", "cubic", "htcp", or "scalable").
func ByName(name string) (Algorithm, error) {
	switch name {
	case "reno":
		return NewReno(), nil
	case "cubic":
		return NewCUBIC(), nil
	case "htcp":
		return NewHTCP(), nil
	case "scalable":
		return NewScalable(), nil
	}
	return nil, fmt.Errorf("tcpmodel: unknown algorithm %q", name)
}

// Names lists the available algorithm names.
func Names() []string { return []string{"reno", "cubic", "htcp", "scalable"} }

// MathisRate returns the classic steady-state Reno throughput bound
// (Mathis et al.): MSS/RTT * sqrt(3/2) / sqrt(p) bytes per second for
// packet-loss probability p. It is used in tests as a sanity reference
// and by documentation examples.
func MathisRate(mss, rtt, p float64) float64 {
	if rtt <= 0 || p <= 0 {
		return math.Inf(1)
	}
	return mss / rtt * math.Sqrt(1.5/p)
}
