package sim

import "fmt"

// Clock is a fixed-step virtual clock. Time is measured in seconds from
// the start of the simulation. The zero value is a clock at t=0 with an
// unset step; construct with NewClock to choose the step.
type Clock struct {
	now  float64
	dt   float64
	step uint64
}

// DefaultDT is the default simulation step in virtual seconds. 50 ms is
// fine enough to resolve per-RTT window dynamics on WAN paths (RTT of a
// few to tens of milliseconds are accumulated across steps) while
// keeping an 1800 s experiment cheap.
const DefaultDT = 0.05

// NewClock returns a clock that advances dt virtual seconds per Tick.
// A non-positive dt selects DefaultDT.
func NewClock(dt float64) *Clock {
	if dt <= 0 {
		dt = DefaultDT
	}
	return &Clock{dt: dt}
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// DT returns the step size in seconds.
func (c *Clock) DT() float64 { return c.dt }

// Step returns the number of ticks taken so far.
func (c *Clock) Step() uint64 { return c.step }

// Tick advances the clock by one step and returns the new time.
func (c *Clock) Tick() float64 {
	c.step++
	// Recompute from the step count rather than accumulating so that
	// long runs do not drift from floating-point summation.
	c.now = float64(c.step) * c.dt
	return c.now
}

// String implements fmt.Stringer.
func (c *Clock) String() string {
	return fmt.Sprintf("t=%.3fs (step %d, dt=%gs)", c.now, c.step, c.dt)
}
