// Package sim provides the small deterministic kernel shared by the
// network and endpoint simulators: a seeded random number source and a
// fixed-step virtual clock.
//
// Everything in this repository that involves randomness draws from a
// sim.RNG created from an explicit seed, so every experiment is exactly
// reproducible. The clock measures virtual seconds as float64 values;
// simulation rates are expressed in bytes per (virtual) second.
package sim

import "math/rand/v2"

// RNG is a deterministic random source. The zero value is not usable;
// construct with NewRNG.
type RNG struct {
	r   *rand.Rand
	src *rand.PCG
}

// NewRNG returns a generator seeded from seed. Two RNGs built from the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	// Derive the second PCG word from the first with SplitMix64 so that
	// nearby seeds give unrelated streams.
	src := rand.NewPCG(seed, splitmix64(seed))
	return &RNG{r: rand.New(src), src: src}
}

// MarshalBinary captures the generator's exact position in its stream,
// for checkpointing. It implements encoding.BinaryMarshaler.
func (g *RNG) MarshalBinary() ([]byte, error) { return g.src.MarshalBinary() }

// UnmarshalBinary restores a position captured by MarshalBinary. It
// implements encoding.BinaryUnmarshaler.
func (g *RNG) UnmarshalBinary(data []byte) error { return g.src.UnmarshalBinary(data) }

// splitmix64 is the finalizer of the SplitMix64 generator, used only to
// expand a single seed word into two.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Bernoulli reports true with probability p. Values of p outside [0, 1]
// are clamped.
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Jitter returns x scaled by a uniform factor in [1-frac, 1+frac].
// It is used to desynchronize otherwise identical streams.
func (g *RNG) Jitter(x, frac float64) float64 {
	if frac <= 0 {
		return x
	}
	return x * (1 + frac*(2*g.r.Float64()-1))
}

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Split returns a new RNG whose stream is independent of g's future
// output. It is used to give each subsystem its own source so that
// adding draws in one subsystem does not perturb another.
func (g *RNG) Split() *RNG {
	return NewRNG(g.r.Uint64())
}
