package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestNewRNGSeedsIndependent(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 1000 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := g.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 100; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if g.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !g.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	g := NewRNG(11)
	const n = 200000
	const p = 0.3
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) frequency = %v, want within 0.01", p, got)
	}
}

func TestJitterBounds(t *testing.T) {
	g := NewRNG(5)
	f := func(seed uint64) bool {
		x := 100.0
		frac := 0.25
		v := g.Jitter(x, frac)
		return v >= x*(1-frac) && v <= x*(1+frac)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitterZeroFrac(t *testing.T) {
	g := NewRNG(5)
	if v := g.Jitter(3.5, 0); v != 3.5 {
		t.Fatalf("Jitter(3.5, 0) = %v, want 3.5", v)
	}
	if v := g.Jitter(3.5, -1); v != 3.5 {
		t.Fatalf("Jitter(3.5, -1) = %v, want 3.5", v)
	}
}

func TestSplitIndependence(t *testing.T) {
	g := NewRNG(9)
	child := g.Split()
	// The child stream should not be identical to the parent's
	// continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == g.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("child stream collided with parent on %d draws", same)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(13)
	for n := 1; n <= 20; n++ {
		p := g.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestClockTick(t *testing.T) {
	c := NewClock(0.5)
	if c.Now() != 0 {
		t.Fatalf("new clock Now() = %v, want 0", c.Now())
	}
	c.Tick()
	c.Tick()
	if got := c.Now(); got != 1.0 {
		t.Fatalf("after two 0.5s ticks Now() = %v, want 1.0", got)
	}
	if c.Step() != 2 {
		t.Fatalf("Step() = %d, want 2", c.Step())
	}
}

func TestClockDefaultDT(t *testing.T) {
	c := NewClock(0)
	if c.DT() != DefaultDT {
		t.Fatalf("DT() = %v, want %v", c.DT(), DefaultDT)
	}
	c = NewClock(-1)
	if c.DT() != DefaultDT {
		t.Fatalf("DT() = %v, want %v", c.DT(), DefaultDT)
	}
}

func TestClockNoDrift(t *testing.T) {
	// Accumulating 0.1 a million times drifts; the clock must not.
	c := NewClock(0.1)
	for i := 0; i < 1_000_000; i++ {
		c.Tick()
	}
	want := 100000.0
	if math.Abs(c.Now()-want) > 1e-6 {
		t.Fatalf("after 1e6 ticks Now() = %v, want %v", c.Now(), want)
	}
}

func TestClockString(t *testing.T) {
	c := NewClock(0.05)
	c.Tick()
	if s := c.String(); s == "" {
		t.Fatal("String() returned empty")
	}
}
